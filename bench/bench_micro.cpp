// Microbenchmarks (google-benchmark): throughput of the substrate
// primitives every experiment rests on — hashing, HMAC, AES, ChaCha20,
// hash-based signatures, evidence appends, bus transactions and raw
// CPU emulation speed.
#include <benchmark/benchmark.h>

#include "core/ssm/evidence.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/wots.h"
#include "isa/assembler.h"
#include "isa/cpu.h"
#include "mem/ram.h"
#include "util/rng.h"

namespace {

using namespace cres;

void BM_Sha256(benchmark::State& state) {
    Rng rng(1);
    const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::sha256(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
    Rng rng(2);
    const Bytes key = rng.bytes(32);
    const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void BM_Aes128Ctr(benchmark::State& state) {
    Rng rng(3);
    const auto key = crypto::aes_key_from_bytes(rng.bytes(16));
    const crypto::Aes128 aes(key);
    const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    crypto::Aes128Block nonce{};
    for (auto _ : state) {
        benchmark::DoNotOptimize(aes.ctr_crypt(data, nonce));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(1024)->Arg(16384);

void BM_ChaCha20(benchmark::State& state) {
    Rng rng(4);
    crypto::ChaChaKey key;
    rng.fill(key);
    crypto::ChaChaNonce nonce{};
    const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::chacha20_crypt(key, nonce, 0, data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(1024)->Arg(16384);

void BM_WotsSign(benchmark::State& state) {
    crypto::Hash256 s1, s2;
    s1.fill(1);
    s2.fill(2);
    const crypto::WotsKeyPair kp(s1, s2);
    const Bytes msg = to_bytes("firmware digest");
    for (auto _ : state) {
        benchmark::DoNotOptimize(kp.sign(msg));
    }
}
BENCHMARK(BM_WotsSign);

void BM_WotsVerify(benchmark::State& state) {
    crypto::Hash256 s1, s2;
    s1.fill(1);
    s2.fill(2);
    const crypto::WotsKeyPair kp(s1, s2);
    const Bytes msg = to_bytes("firmware digest");
    const auto sig = kp.sign(msg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::wots_verify(sig, msg, kp.public_key(), s2));
    }
}
BENCHMARK(BM_WotsVerify);

void BM_MerkleKeygen(benchmark::State& state) {
    crypto::Hash256 seed;
    seed.fill(7);
    const auto height = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        crypto::MerkleSigner signer(seed, height);
        benchmark::DoNotOptimize(signer.public_key());
    }
}
BENCHMARK(BM_MerkleKeygen)->Arg(2)->Arg(4)->Arg(6);

void BM_EvidenceAppend(benchmark::State& state) {
    core::EvidenceLog log(to_bytes("key"));
    std::uint64_t cycle = 0;
    for (auto _ : state) {
        log.append(cycle++, "event", "bus-monitor alert at 0x40005000");
    }
}
BENCHMARK(BM_EvidenceAppend);

void BM_BusTransaction(benchmark::State& state) {
    mem::Bus bus;
    mem::Ram ram("ram", 0x10000);
    bus.map(mem::RegionConfig{"ram", 0, 0x10000, false, false}, ram);
    const mem::BusAttr attr{mem::Master::kCpu, false, true};
    std::uint32_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bus.read(addr & 0xfffc, 4, attr));
        addr += 4;
    }
}
BENCHMARK(BM_BusTransaction);

void BM_CpuEmulation(benchmark::State& state) {
    mem::Bus bus;
    mem::Ram ram("ram", 0x10000);
    bus.map(mem::RegionConfig{"ram", 0, 0x10000, false, false}, ram);
    isa::Cpu cpu("cpu0", bus);
    const isa::Program p = isa::assemble(R"(
    loop:
        addi r1, r1, 1
        xor  r2, r2, r1
        j loop
    )");
    ram.load(0, p.code);
    cpu.reset(0);
    for (auto _ : state) {
        cpu.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CpuEmulation);

}  // namespace

BENCHMARK_MAIN();
