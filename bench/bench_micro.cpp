// Microbenchmarks (google-benchmark): throughput of the substrate
// primitives every experiment rests on — hashing, HMAC, AES, ChaCha20,
// hash-based signatures, evidence appends, bus transactions and raw
// CPU emulation speed.
//
// Before the google-benchmark suite runs, main() takes a self-timed
// pass over the crypto hot path and writes BENCH_crypto.json (path
// overridable via CRES_BENCH_JSON) so CI can archive and diff the
// numbers across commits.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>

#include "bench_util.h"
#include "core/ssm/evidence.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/wots.h"
#include "isa/assembler.h"
#include "isa/cpu.h"
#include "mem/ram.h"
#include "util/rng.h"

namespace {

using namespace cres;

void BM_Sha256(benchmark::State& state) {
    Rng rng(1);
    const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::sha256(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
    Rng rng(2);
    const Bytes key = rng.bytes(32);
    const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(4096);

void BM_HmacSha256Keyed(benchmark::State& state) {
    Rng rng(2);
    const Bytes key = rng.bytes(32);
    const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    const crypto::HmacSha256 keyed(key);
    for (auto _ : state) {
        benchmark::DoNotOptimize(keyed.tag(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_HmacSha256Keyed)->Arg(64)->Arg(4096);

void BM_Aes128Ctr(benchmark::State& state) {
    Rng rng(3);
    const auto key = crypto::aes_key_from_bytes(rng.bytes(16));
    const crypto::Aes128 aes(key);
    const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    crypto::Aes128Block nonce{};
    for (auto _ : state) {
        benchmark::DoNotOptimize(aes.ctr_crypt(data, nonce));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Aes128Ctr)->Arg(1024)->Arg(16384);

void BM_ChaCha20(benchmark::State& state) {
    Rng rng(4);
    crypto::ChaChaKey key;
    rng.fill(key);
    crypto::ChaChaNonce nonce{};
    const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::chacha20_crypt(key, nonce, 0, data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_ChaCha20)->Arg(1024)->Arg(16384);

void BM_WotsSign(benchmark::State& state) {
    crypto::Hash256 s1, s2;
    s1.fill(1);
    s2.fill(2);
    const crypto::WotsKeyPair kp(s1, s2);
    const Bytes msg = to_bytes("firmware digest");
    for (auto _ : state) {
        benchmark::DoNotOptimize(kp.sign(msg));
    }
}
BENCHMARK(BM_WotsSign);

void BM_WotsVerify(benchmark::State& state) {
    crypto::Hash256 s1, s2;
    s1.fill(1);
    s2.fill(2);
    const crypto::WotsKeyPair kp(s1, s2);
    const Bytes msg = to_bytes("firmware digest");
    const auto sig = kp.sign(msg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            crypto::wots_verify(sig, msg, kp.public_key(), s2));
    }
}
BENCHMARK(BM_WotsVerify);

void BM_MerkleKeygen(benchmark::State& state) {
    crypto::Hash256 seed;
    seed.fill(7);
    const auto height = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        crypto::MerkleSigner signer(seed, height);
        benchmark::DoNotOptimize(signer.public_key());
    }
}
BENCHMARK(BM_MerkleKeygen)->Arg(2)->Arg(4)->Arg(6);

void BM_EvidenceAppend(benchmark::State& state) {
    core::EvidenceLog log(to_bytes("key"));
    std::uint64_t cycle = 0;
    for (auto _ : state) {
        log.append(cycle++, "event", "bus-monitor alert at 0x40005000");
    }
}
BENCHMARK(BM_EvidenceAppend);

void BM_EvidenceVerifyIncremental(benchmark::State& state) {
    core::EvidenceLog log(to_bytes("key"));
    std::uint64_t cycle = 0;
    for (std::uint64_t i = 0; i < 1024; ++i) {
        log.append(cycle++, "event", "seed record");
    }
    (void)log.verify_chain();  // Advance the watermark past the seed.
    for (auto _ : state) {
        log.append(cycle++, "event", "bus-monitor alert at 0x40005000");
        benchmark::DoNotOptimize(log.verify_chain());
        if (log.size() > 64 * 1024) {
            state.PauseTiming();
            log.wipe();
            state.ResumeTiming();
        }
    }
}
BENCHMARK(BM_EvidenceVerifyIncremental);

void BM_EvidenceVerifyFull(benchmark::State& state) {
    core::EvidenceLog log(to_bytes("key"));
    for (std::uint64_t i = 0; i < 1024; ++i) {
        log.append(i, "event", "seed record");
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(log.verify_chain_full());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            1024);
}
BENCHMARK(BM_EvidenceVerifyFull);

void BM_BusTransaction(benchmark::State& state) {
    mem::Bus bus;
    mem::Ram ram("ram", 0x10000);
    bus.map(mem::RegionConfig{"ram", 0, 0x10000, false, false}, ram);
    const mem::BusAttr attr{mem::Master::kCpu, false, true};
    std::uint32_t addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bus.read(addr & 0xfffc, 4, attr));
        addr += 4;
    }
}
BENCHMARK(BM_BusTransaction);

void BM_CpuEmulation(benchmark::State& state) {
    mem::Bus bus;
    mem::Ram ram("ram", 0x10000);
    bus.map(mem::RegionConfig{"ram", 0, 0x10000, false, false}, ram);
    isa::Cpu cpu("cpu0", bus);
    const isa::Program p = isa::assemble(R"(
    loop:
        addi r1, r1, 1
        xor  r2, r2, r1
        j loop
    )");
    ram.load(0, p.code);
    cpu.reset(0);
    for (auto _ : state) {
        cpu.step();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CpuEmulation);

// --- Self-timed crypto baseline -> BENCH_crypto.json ---------------------
//
// google-benchmark's JSON output mixes every suite together and changes
// shape across versions; the tracked baseline wants a small, stable,
// flat document. So the crypto hot path is timed here directly.

/// Runs `op` in batches until ~80ms have elapsed; returns ops/second.
template <typename F>
double ops_per_second(F&& op, std::size_t batch) {
    using Clock = std::chrono::steady_clock;
    for (std::size_t i = 0; i < batch; ++i) op();  // Warm-up batch.
    constexpr std::chrono::milliseconds kMinElapsed{80};
    std::size_t total = 0;
    const auto start = Clock::now();
    auto now = start;
    do {
        for (std::size_t i = 0; i < batch; ++i) op();
        total += batch;
        now = Clock::now();
    } while (now - start < kMinElapsed);
    const double secs = std::chrono::duration<double>(now - start).count();
    return static_cast<double>(total) / secs;
}

void write_crypto_baseline() {
    bench::JsonReporter report;
    bench::Table table({"metric", "value", "unit"});
    report.field("schema", "cres-bench-crypto/v1");
    report.field("sha256_backend", crypto::sha256_backend());

    Rng rng(42);
    const Bytes key = rng.bytes(32);

    // SHA-256 throughput across the sizes the system actually hashes:
    // 64B (chain links), 1KiB (reports/frames), 64KiB (firmware images).
    for (const std::size_t size : {std::size_t{64}, std::size_t{1024},
                                   std::size_t{64 * 1024}}) {
        const Bytes data = rng.bytes(size);
        const double ops = ops_per_second(
            [&] { benchmark::DoNotOptimize(crypto::sha256(data)); }, 256);
        const double mb_per_s =
            ops * static_cast<double>(size) / (1000.0 * 1000.0);
        const std::string label = size == 64      ? "sha256_64B"
                                  : size == 1024  ? "sha256_1KiB"
                                                  : "sha256_64KiB";
        report.metric(label + "_mb_per_s", mb_per_s);
        table.row(label, bench::fmt_double(mb_per_s), "MB/s");
    }

    // HMAC 64B tags: cold (re-derives ipad/opad per call) vs keyed
    // (cached midstates). The ratio is the midstate-cache win.
    const Bytes msg = rng.bytes(64);
    const double cold = ops_per_second(
        [&] { benchmark::DoNotOptimize(crypto::hmac_sha256(key, msg)); },
        256);
    const crypto::HmacSha256 keyed(key);
    const double warm = ops_per_second(
        [&] { benchmark::DoNotOptimize(keyed.tag(msg)); }, 256);
    report.metric("hmac_64B_cold_tags_per_s", cold);
    report.metric("hmac_64B_keyed_tags_per_s", warm);
    report.metric("hmac_keyed_speedup", warm / cold);
    table.row("hmac_64B_cold", bench::fmt_double(cold, 0), "tags/s");
    table.row("hmac_64B_keyed", bench::fmt_double(warm, 0), "tags/s");
    table.row("hmac_keyed_speedup", bench::fmt_double(warm / cold), "x");

    // Evidence chain: append throughput, then incremental (watermark)
    // vs full re-verification of a 1024-record log.
    {
        core::EvidenceLog log(key);
        std::uint64_t cycle = 0;
        const double appends = ops_per_second(
            [&] {
                log.append(cycle++, "event", "bus-monitor alert");
                if (log.size() > 64 * 1024) log.wipe();
            },
            512);
        report.metric("evidence_append_ops_per_s", appends);
        table.row("evidence_append", bench::fmt_double(appends, 0), "ops/s");
    }
    {
        core::EvidenceLog log(key);
        std::uint64_t cycle = 0;
        for (int i = 0; i < 1024; ++i) log.append(cycle++, "event", "seed");
        (void)log.verify_chain();
        const double incremental = ops_per_second(
            [&] {
                log.append(cycle++, "event", "fresh");
                benchmark::DoNotOptimize(log.verify_chain());
                if (log.size() > 64 * 1024) {
                    log.wipe();
                    (void)log.verify_chain();
                }
            },
            256);
        const double full = ops_per_second(
            [&] { benchmark::DoNotOptimize(log.verify_chain_full()); }, 8);
        report.metric("evidence_verify_incremental_ops_per_s", incremental);
        report.metric("evidence_verify_full_1024_ops_per_s", full);
        table.row("evidence_verify_incremental",
                  bench::fmt_double(incremental, 0), "append+verify/s");
        table.row("evidence_verify_full_1024", bench::fmt_double(full, 0),
                  "verifies/s");
    }

    // Merkle keygen (height 4 = 16 WOTS leaves): dominated by hashing,
    // so it tracks the Sha256-reuse refactor.
    {
        crypto::Hash256 seed;
        seed.fill(7);
        const double builds = ops_per_second(
            [&] {
                crypto::MerkleSigner signer(seed, 4);
                benchmark::DoNotOptimize(signer.public_key());
            },
            4);
        report.metric("merkle_h4_builds_per_s", builds);
        table.row("merkle_h4_build", bench::fmt_double(builds, 0),
                  "builds/s");
    }

    report.field("table_csv", table.csv());

    bench::section("crypto hot-path baseline");
    table.print();
    const char* path_env = std::getenv("CRES_BENCH_JSON");
    const std::string path = path_env ? path_env : "BENCH_crypto.json";
    if (report.write(path)) {
        std::cout << "\nwrote " << path << "\n\n";
    }
}

}  // namespace

int main(int argc, char** argv) {
    write_crypto_baseline();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
