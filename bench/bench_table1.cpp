// E1 — Reproduces the paper's Table I: the mapping from NIST CSF core
// security functions and derived embedded security requirements onto
// concrete mechanisms — generated from this implementation's live
// capability registry rather than hand-written, so the table cannot
// drift from the code.
#include "bench_util.h"
#include "core/registry.h"

int main() {
    using namespace cres;

    bench::section(
        "E1 / Table I — CSF functions -> embedded requirements -> "
        "implemented mechanisms");

    bench::Table table({"CSF function", "Embedded security requirement",
                        "Implemented mechanism", "Module"});
    for (const auto& cap : core::capability_registry()) {
        table.row(cap.csf_function, cap.requirement, cap.mechanism,
                  cap.module);
    }
    table.print();

    std::cout << "\nCSF coverage: ";
    for (const auto& f : core::covered_functions()) std::cout << f << " ";
    std::cout << "(" << core::covered_functions().size() << "/5 functions, "
              << core::capability_registry().size() << " capabilities)\n";
    return 0;
}
