// Shared helpers for the experiment benches: fixed-width table output
// so every bench prints paper-style rows, plus machine-readable CSV and
// JSON emitters so CI can diff metrics across runs.
#pragma once

#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace cres::bench {

/// Prints a titled, fixed-width table.
class Table {
public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers)) {}

    template <typename... Cells>
    void row(Cells&&... cells) {
        std::vector<std::string> r;
        (r.push_back(to_cell(std::forward<Cells>(cells))), ...);
        rows_.push_back(std::move(r));
    }

    void print(std::ostream& os = std::cout) const {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t i = 0; i < headers_.size(); ++i) {
            widths[i] = headers_[i].size();
        }
        for (const auto& r : rows_) {
            for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
                widths[i] = std::max(widths[i], r[i].size());
            }
        }
        auto print_row = [&](const std::vector<std::string>& r) {
            os << "| ";
            for (std::size_t i = 0; i < widths.size(); ++i) {
                os << std::left << std::setw(static_cast<int>(widths[i]))
                   << (i < r.size() ? r[i] : "") << " | ";
            }
            os << "\n";
        };
        print_row(headers_);
        os << "|";
        for (const auto w : widths) {
            os << std::string(w + 2, '-') << "-|";
        }
        os << "\n";
        for (const auto& r : rows_) print_row(r);
    }

    /// RFC 4180-ish CSV rendering of the same data: cells containing a
    /// comma, quote or newline are quoted, embedded quotes doubled.
    /// Escape hatch for reporters that want the table machine-readable.
    [[nodiscard]] std::string csv() const {
        std::string out;
        auto emit_row = [&out](const std::vector<std::string>& r) {
            for (std::size_t i = 0; i < r.size(); ++i) {
                if (i > 0) out += ',';
                const std::string& cell = r[i];
                if (cell.find_first_of(",\"\n") != std::string::npos) {
                    out += '"';
                    for (const char c : cell) {
                        if (c == '"') out += '"';
                        out += c;
                    }
                    out += '"';
                } else {
                    out += cell;
                }
            }
            out += '\n';
        };
        emit_row(headers_);
        for (const auto& r : rows_) emit_row(r);
        return out;
    }

private:
    // Explicit branches per value category keep this -Wconversion-clean:
    // integers never pass through iostream formatting (which would pick
    // up locale/width state), and floating-point values are narrowed
    // only after an explicit cast to double.
    template <typename T>
    static std::string to_cell(T&& value) {
        using Decayed = std::decay_t<T>;
        if constexpr (std::is_convertible_v<T, std::string>) {
            return std::string(std::forward<T>(value));
        } else if constexpr (std::is_same_v<Decayed, bool>) {
            return value ? "true" : "false";
        } else if constexpr (std::is_integral_v<Decayed>) {
            if constexpr (std::is_signed_v<Decayed>) {
                return std::to_string(static_cast<std::int64_t>(value));
            } else {
                return std::to_string(static_cast<std::uint64_t>(value));
            }
        } else if constexpr (std::is_floating_point_v<Decayed>) {
            std::ostringstream os;
            os << static_cast<double>(value);
            return os.str();
        } else {
            std::ostringstream os;
            os << value;
            return os.str();
        }
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Accumulates named benchmark metrics and writes them as one flat JSON
/// object, insertion-ordered, so CI can archive and diff runs without a
/// table parser. Numeric metrics carry their unit in the key suffix
/// (callers pick keys like "sha256_1KiB_mb_per_s"); string fields hold
/// environment facts (backend name, build type) or embedded CSV tables.
class JsonReporter {
public:
    void metric(std::string key, double value) {
        entries_.emplace_back(std::move(key), format_double(value));
    }

    void field(std::string key, const std::string& value) {
        entries_.emplace_back(std::move(key), quote(value));
    }

    [[nodiscard]] std::string json() const {
        std::string out = "{\n";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            out += "  ";
            out += quote(entries_[i].first);
            out += ": ";
            out += entries_[i].second;
            if (i + 1 < entries_.size()) out += ',';
            out += '\n';
        }
        out += "}\n";
        return out;
    }

    /// Returns false (and prints to stderr) if the file cannot be
    /// written; benches treat that as non-fatal so a read-only CWD
    /// does not kill the run.
    bool write(const std::string& path) const {
        std::ofstream out(path);
        if (!out) {
            std::cerr << "JsonReporter: cannot write " << path << "\n";
            return false;
        }
        out << json();
        return static_cast<bool>(out);
    }

private:
    static std::string format_double(double value) {
        std::ostringstream os;
        os << std::setprecision(6) << value;
        return os.str();
    }

    static std::string quote(const std::string& s) {
        std::string out = "\"";
        for (const char c : s) {
            switch (c) {
                case '"': out += "\\\""; break;
                case '\\': out += "\\\\"; break;
                case '\n': out += "\\n"; break;
                case '\t': out += "\\t"; break;
                case '\r': out += "\\r"; break;
                default:
                    if (static_cast<unsigned char>(c) < 0x20) {
                        std::ostringstream os;
                        os << "\\u" << std::hex << std::setw(4)
                           << std::setfill('0') << static_cast<int>(c);
                        out += os.str();
                    } else {
                        out += c;
                    }
            }
        }
        out += '"';
        return out;
    }

    std::vector<std::pair<std::string, std::string>> entries_;
};

/// Reads one "<key>:  <n> kB" entry from /proc/self/status, returning
/// the value in bytes (0 on non-Linux hosts or parse failure — callers
/// must treat 0 as "probe unavailable", not "no memory").
inline std::size_t proc_status_bytes(const std::string& key) {
#ifdef __linux__
    std::ifstream status("/proc/self/status");
    if (!status) return 0;
    std::string line;
    while (std::getline(status, line)) {
        if (line.rfind(key + ":", 0) != 0) continue;
        std::istringstream fields(line.substr(key.size() + 1));
        std::size_t kib = 0;
        if (fields >> kib) return kib * 1024;
        return 0;
    }
#else
    (void)key;
#endif
    return 0;
}

/// Peak resident set (VmHWM): the process-lifetime high-water mark —
/// the honest denominator for bytes-per-node at the largest sweep size.
inline std::size_t peak_rss_bytes() { return proc_status_bytes("VmHWM"); }

/// Current resident set (VmRSS): deltas around a phase give that
/// phase's footprint while the process is still below its peak.
inline std::size_t current_rss_bytes() { return proc_status_bytes("VmRSS"); }

inline void section(const std::string& title) {
    std::cout << "\n=== " << title << " ===\n\n";
}

inline std::string fmt_double(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

inline std::string yesno(bool v) { return v ? "yes" : "no"; }

}  // namespace cres::bench
