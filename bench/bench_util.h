// Shared helpers for the experiment benches: fixed-width table output
// so every bench prints paper-style rows.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace cres::bench {

/// Prints a titled, fixed-width table.
class Table {
public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers)) {}

    template <typename... Cells>
    void row(Cells&&... cells) {
        std::vector<std::string> r;
        (r.push_back(to_cell(std::forward<Cells>(cells))), ...);
        rows_.push_back(std::move(r));
    }

    void print(std::ostream& os = std::cout) const {
        std::vector<std::size_t> widths(headers_.size());
        for (std::size_t i = 0; i < headers_.size(); ++i) {
            widths[i] = headers_[i].size();
        }
        for (const auto& r : rows_) {
            for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
                widths[i] = std::max(widths[i], r[i].size());
            }
        }
        auto print_row = [&](const std::vector<std::string>& r) {
            os << "| ";
            for (std::size_t i = 0; i < widths.size(); ++i) {
                os << std::left << std::setw(static_cast<int>(widths[i]))
                   << (i < r.size() ? r[i] : "") << " | ";
            }
            os << "\n";
        };
        print_row(headers_);
        os << "|";
        for (const auto w : widths) {
            os << std::string(w + 2, '-') << "-|";
        }
        os << "\n";
        for (const auto& r : rows_) print_row(r);
    }

private:
    template <typename T>
    static std::string to_cell(T&& value) {
        if constexpr (std::is_convertible_v<T, std::string>) {
            return std::string(std::forward<T>(value));
        } else {
            std::ostringstream os;
            os << value;
            return os.str();
        }
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

inline void section(const std::string& title) {
    std::cout << "\n=== " << title << " ===\n\n";
}

inline std::string fmt_double(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

inline std::string yesno(bool v) { return v ? "yes" : "no"; }

}  // namespace cres::bench
