// E2 — Reproduces the paper's Figure 1 as a live trace: the five CSF
// core security functions (Identify, Protect, Detect, Respond,
// Recover) exercised by one incident on the resilient platform. The
// output is the SSM's health-state walk plus the evidence records that
// realise each function.
#include "attack/attacks.h"
#include "bench_util.h"
#include "platform/scenario.h"

int main() {
    using namespace cres;

    platform::ScenarioConfig config;
    config.node.name = "lifecycle";
    config.node.resilient = true;
    config.warmup = 20000;
    config.horizon = 100000;
    config.seed = 42;

    platform::Scenario scenario(config);
    attack::StackSmashAttack attack;
    const auto result = scenario.run(&attack, 30000);
    auto& node = scenario.node();

    bench::section("E2 / Figure 1 — CSF lifecycle walk on a live incident");

    // IDENTIFY: the risk register ranked by live risk.
    std::cout << "[IDENTIFY] asset inventory (top risks):\n";
    bench::Table risks({"asset", "kind", "criticality", "exposure",
                        "incidents", "risk score"});
    int shown = 0;
    for (const auto& asset : node.ssm->risks().ranked()) {
        if (shown++ >= 6) break;
        risks.row(asset.name, core::asset_kind_name(asset.kind),
                  asset.criticality, asset.exposure, asset.incidents,
                  bench::fmt_double(node.ssm->risks().risk_score(asset.name)));
    }
    risks.print();

    // PROTECT: what the trust substrate provided.
    std::cout << "\n[PROTECT] secure substrate: signed boot images, "
                 "measured-boot PCRs, MPU W^X, secure bus attributes, "
                 "authenticated M2M channel (see bench_boot)\n";

    // DETECT / RESPOND / RECOVER: the state walk.
    std::cout << "\n[DETECT->RESPOND->RECOVER] SSM state transitions:\n";
    bench::Table states({"cycle", "transition / action"});
    for (const auto& record : node.ssm->evidence().records()) {
        if (record.kind == "state" || record.kind == "action" ||
            record.kind == "decision") {
            states.row(record.at, record.kind + ": " + record.detail);
        }
    }
    states.print();

    std::cout << "\nfinal health: "
              << core::health_state_name(node.ssm->health()) << "\n";
    std::cout << "detection latency: "
              << (result.detection_latency
                      ? std::to_string(*result.detection_latency) + " cycles"
                      : "n/a")
              << ", responses executed: " << result.responses_executed
              << ", leaked bytes: " << result.leaked_bytes
              << ", evidence chain verifies: "
              << bench::yesno(result.evidence_chain_ok) << "\n";
    return 0;
}
