// E13 — Fleet-scale operation: an operator backend running periodic
// attestation sweeps and health collection over a device population
// while a subset is attacked. Measures localisation (which devices get
// flagged), fleet service, and sweep cost vs fleet size — the
// operational picture the paper's critical-infrastructure setting
// implies.
#include <chrono>

#include "attack/attacks.h"
#include "bench_util.h"
#include "platform/fleet.h"

namespace {

using namespace cres;

}  // namespace

int main() {
    bench::section("E13a — Compromise localisation in a 8-device fleet");
    {
        platform::FleetConfig config;
        config.device_count = 8;
        config.resilient = true;
        config.seed = 44;
        platform::Fleet fleet(config);
        fleet.run(20000);
        fleet.checkpoint_all();

        // Wave of trouble: firmware implant on #2, key loss on #5,
        // runtime breach on #6.
        crypto::Hash256 implant;
        implant.fill(0x66);
        fleet.device(2).pcrs.extend(boot::PcrBank::kPcrFirmware, implant);
        fleet.device(5).tee_ram.fill(0);
        attack::StackSmashAttack smash;
        smash.launch(fleet.device(6), fleet.device(6).sim.now() + 2000);
        fleet.run(40000);

        const auto sweep = fleet.attestation_sweep();
        const auto health = fleet.collect_health();

        bench::Table table({"device", "attestation verdict", "SSM health",
                            "report verified", "evidence records",
                            "ctrl iterations"});
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            table.row("device-" + std::to_string(i),
                      net::attest_result_name(sweep.verdicts[i]),
                      core::health_state_name(health.states[i]),
                      bench::yesno(health.report_valid[i]),
                      fleet.device(i).ssm->evidence().size(),
                      fleet.device(i).stats().control_iterations);
        }
        table.print();
        std::cout << "\nsweep: " << sweep.trusted << " trusted, "
                  << sweep.flagged << " flagged; flagged devices:";
        for (const auto i : sweep.flagged_devices()) std::cout << " #" << i;
        std::cout << "\nExpected shape: exactly the implanted (#2) and "
                     "key-wiped (#5) devices fail attestation; the runtime "
                     "breach on #6 passes attestation (firmware unchanged) "
                     "but its signed evidence log carries the incident — "
                     "the two mechanisms localise different attack stages.\n";
    }

    bench::section("E13b — Sweep cost vs fleet size");
    {
        bench::Table table({"devices", "enrol+warmup wall (ms)",
                            "sweep wall (ms)", "all trusted"});
        for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
            platform::FleetConfig config;
            config.device_count = n;
            config.resilient = true;
            config.seed = 45;
            const auto t0 = std::chrono::steady_clock::now();
            platform::Fleet fleet(config);
            fleet.run(5000);
            const auto t1 = std::chrono::steady_clock::now();
            const auto sweep = fleet.attestation_sweep();
            const auto t2 = std::chrono::steady_clock::now();
            table.row(
                n,
                bench::fmt_double(
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count(),
                    1),
                bench::fmt_double(
                    std::chrono::duration<double, std::milli>(t2 - t1)
                        .count(),
                    1),
                bench::yesno(sweep.trusted == n));
        }
        table.print();
        std::cout << "\nExpected shape: both costs linear in fleet size "
                     "(per-device HMAC quote + verify); attestation "
                     "scales to fleets without per-device state explosion."
                     "\n";
    }
    return 0;
}
