// E13 — Fleet-scale operation: an operator backend running periodic
// attestation sweeps and health collection over a device population
// while a subset is attacked. Measures localisation (which devices get
// flagged), fleet service, sweep cost vs fleet size, and (E13c)
// parallel scaling: devices/sec and speedup across worker-thread
// counts, with the determinism contract checked against the serial
// run — the operational picture the paper's critical-infrastructure
// setting implies.
#include <algorithm>
#include <chrono>
#include <thread>

#include "attack/attacks.h"
#include "bench_util.h"
#include "platform/fleet.h"

namespace {

using namespace cres;

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/// One full operator epoch: advance the fleet, sweep it, collect
/// health. This is the unit the scaling table rates in devices/sec.
platform::SweepResult fleet_epoch(platform::Fleet& fleet,
                                  sim::Cycle cycles) {
    fleet.run(cycles);
    platform::SweepResult sweep = fleet.attestation_sweep();
    (void)fleet.collect_health();
    return sweep;
}

}  // namespace

int main() {
    bench::section("E13a — Compromise localisation in a 8-device fleet");
    {
        platform::FleetConfig config;
        config.device_count = 8;
        config.resilient = true;
        config.seed = 44;
        platform::Fleet fleet(config);
        fleet.run(20000);
        fleet.checkpoint_all();

        // Wave of trouble: firmware implant on #2, key loss on #5,
        // runtime breach on #6.
        crypto::Hash256 implant;
        implant.fill(0x66);
        fleet.device(2).pcrs.extend(boot::PcrBank::kPcrFirmware, implant);
        fleet.device(5).tee_ram.fill(0);
        attack::StackSmashAttack smash;
        smash.launch(fleet.device(6), fleet.device(6).sim.now() + 2000);
        fleet.run(40000);

        const auto sweep = fleet.attestation_sweep();
        const auto health = fleet.collect_health();

        bench::Table table({"device", "attestation verdict", "SSM health",
                            "report verified", "evidence records",
                            "ctrl iterations"});
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            table.row("device-" + std::to_string(i),
                      net::attest_result_name(sweep.verdicts[i]),
                      core::health_state_name(health.states[i]),
                      bench::yesno(health.report_valid[i]),
                      fleet.device(i).ssm->evidence().size(),
                      fleet.device(i).stats().control_iterations);
        }
        table.print();
        std::cout << "\nsweep: " << sweep.trusted << " trusted, "
                  << sweep.flagged << " flagged; flagged devices:";
        for (const auto i : sweep.flagged_devices()) std::cout << " #" << i;
        std::cout << "\nExpected shape: exactly the implanted (#2) and "
                     "key-wiped (#5) devices fail attestation; the runtime "
                     "breach on #6 passes attestation (firmware unchanged) "
                     "but its signed evidence log carries the incident — "
                     "the two mechanisms localise different attack stages.\n";
    }

    bench::section("E13b — Sweep cost vs fleet size");
    {
        bench::Table table({"devices", "enrol+warmup wall (ms)",
                            "sweep wall (ms)", "all trusted"});
        for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
            platform::FleetConfig config;
            config.device_count = n;
            config.resilient = true;
            config.seed = 45;
            const auto t0 = std::chrono::steady_clock::now();
            platform::Fleet fleet(config);
            fleet.run(5000);
            const auto t1 = std::chrono::steady_clock::now();
            const auto sweep = fleet.attestation_sweep();
            const auto t2 = std::chrono::steady_clock::now();
            table.row(
                n,
                bench::fmt_double(
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count(),
                    1),
                bench::fmt_double(
                    std::chrono::duration<double, std::milli>(t2 - t1)
                        .count(),
                    1),
                bench::yesno(sweep.trusted == n));
        }
        table.print();
        std::cout << "\nExpected shape: both costs linear in fleet size "
                     "(per-device HMAC quote + verify); attestation "
                     "scales to fleets without per-device state explosion."
                     "\n";
    }

    bench::section("E13c — Parallel scaling: devices/sec vs worker threads");
    {
        const std::size_t hw = std::max(
            1u, std::thread::hardware_concurrency());
        std::cout << "hardware concurrency: " << hw << " (threads=hw row)\n"
                  << "epoch = enrol once, then run 2000 cycles + "
                     "attestation sweep + health collection\n\n";

        constexpr sim::Cycle kEpochCycles = 2000;
        // Each (devices, threads) point runs twice: guest-code
        // translation on (the default) and off (interpreter ablation,
        // docs/EXECUTION.md). Both must produce the serial verdicts —
        // translation is a speed knob, never a semantics knob.
        bench::Table table({"devices", "threads", "enrol (ms)",
                            "epoch xlat (ms)", "epoch interp (ms)",
                            "devices/sec xlat", "devices/sec interp",
                            "thread speedup", "xlat speedup",
                            "verdicts == serial"});
        for (const std::size_t devices :
             {std::size_t{8}, std::size_t{64}, std::size_t{256},
              std::size_t{1024}}) {
            platform::SweepResult serial_sweep;
            double serial_epoch_s = 0.0;

            std::vector<std::size_t> thread_counts{1, 2, 4};
            if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
                thread_counts.end()) {
                thread_counts.push_back(hw);
            }
            for (const std::size_t threads : thread_counts) {
                platform::FleetConfig config;
                config.device_count = devices;
                config.resilient = true;
                config.seed = 46;
                config.worker_threads = threads;

                const auto t0 = std::chrono::steady_clock::now();
                platform::Fleet fleet(config);
                const double enrol_s = seconds_since(t0);

                const auto t1 = std::chrono::steady_clock::now();
                const platform::SweepResult sweep =
                    fleet_epoch(fleet, kEpochCycles);
                const double epoch_s = seconds_since(t1);

                // Same fleet, guest translation off: every device
                // interprets every instruction.
                config.translate = false;
                platform::Fleet interp_fleet(config);
                const auto t2 = std::chrono::steady_clock::now();
                const platform::SweepResult interp_sweep =
                    fleet_epoch(interp_fleet, kEpochCycles);
                const double interp_epoch_s = seconds_since(t2);

                // Determinism contract: every thread count — and both
                // execution engines — reproduces the serial verdict
                // vector bit-for-bit.
                bool matches_serial = true;
                if (threads == 1) {
                    serial_sweep = sweep;
                    serial_epoch_s = epoch_s;
                } else {
                    matches_serial = sweep.verdicts == serial_sweep.verdicts;
                }
                matches_serial = matches_serial &&
                                 interp_sweep.verdicts == sweep.verdicts;

                table.row(devices,
                          threads == hw && threads != 1 &&
                                  threads != 2 && threads != 4
                              ? std::to_string(threads) + " (hw)"
                              : std::to_string(threads),
                          bench::fmt_double(enrol_s * 1e3, 1),
                          bench::fmt_double(epoch_s * 1e3, 1),
                          bench::fmt_double(interp_epoch_s * 1e3, 1),
                          bench::fmt_double(
                              static_cast<double>(devices) / epoch_s, 0),
                          bench::fmt_double(
                              static_cast<double>(devices) / interp_epoch_s,
                              0),
                          bench::fmt_double(serial_epoch_s / epoch_s, 2),
                          bench::fmt_double(interp_epoch_s / epoch_s, 2),
                          bench::yesno(matches_serial));
            }
        }
        table.print();
        std::cout << "\nExpected shape: near-linear thread speedup up to "
                     "the physical core count (device-nodes are fully "
                     "thread-confined; no locks on the hot path), flat "
                     "beyond it; translation adds a further per-core "
                     "multiplier on the guest-execution share of the "
                     "epoch (attestation crypto is unaffected). The "
                     "verdict column must read yes everywhere — neither "
                     "parallelism nor the execution engine ever changes "
                     "results, only wall time.\n";
    }
    return 0;
}
