// E13 — Fleet-scale operation: an operator backend running periodic
// attestation sweeps and health collection over a device population
// while a subset is attacked. Measures localisation (which devices get
// flagged), fleet service, sweep cost vs fleet size, and (E13c)
// parallel scaling: devices/sec and speedup across worker-thread
// counts, with the determinism contract checked against the serial
// run — the operational picture the paper's critical-infrastructure
// setting implies.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "attack/attacks.h"
#include "attack/campaigns.h"
#include "bench_util.h"
#include "platform/fleet.h"

namespace {

using namespace cres;

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/// E13d sweep sizes: CRES_E13D_DEVICES (comma-separated) overrides the
/// default. CI uses "50000"; the million-node headline run uses
/// "10000,100000,1000000"; the default stays small enough for the
/// build-test smoke run.
std::vector<std::size_t> e13d_device_counts() {
    if (const char* env = std::getenv("CRES_E13D_DEVICES")) {
        std::vector<std::size_t> out;
        const std::string s(env);
        std::size_t pos = 0;
        while (pos <= s.size()) {
            std::size_t next = s.find(',', pos);
            if (next == std::string::npos) next = s.size();
            const std::string token = s.substr(pos, next - pos);
            if (!token.empty()) {
                out.push_back(
                    static_cast<std::size_t>(std::stoull(token)));
            }
            pos = next + 1;
        }
        if (!out.empty()) return out;
    }
    return {1000, 10000};
}

/// E16 sweep sizes: CRES_E16_DEVICES (comma-separated) overrides the
/// default. CI uses "10000"; the paper sweep is "1000,10000,50000";
/// the default stays small for the build-test smoke run.
std::vector<std::size_t> e16_device_counts() {
    if (const char* env = std::getenv("CRES_E16_DEVICES")) {
        std::vector<std::size_t> out;
        const std::string s(env);
        std::size_t pos = 0;
        while (pos <= s.size()) {
            std::size_t next = s.find(',', pos);
            if (next == std::string::npos) next = s.size();
            const std::string token = s.substr(pos, next - pos);
            if (!token.empty()) {
                out.push_back(
                    static_cast<std::size_t>(std::stoull(token)));
            }
            pos = next + 1;
        }
        if (!out.empty()) return out;
    }
    return {256, 1000};
}

/// E17 estate size: CRES_E17_DEVICES overrides the default. CI uses a
/// size large enough for a stable drain-overhead ratio; the default
/// stays small for the build-test smoke run.
std::size_t e17_device_count() {
    if (const char* env = std::getenv("CRES_E17_DEVICES")) {
        const std::size_t v = static_cast<std::size_t>(std::stoull(env));
        if (v > 0) return v;
    }
    return 256;
}

/// The E16 estate: resilient WFI control nodes (monitors + SSM feed
/// the per-device SIEM buffers), quiescence on — campaign verdicts are
/// scheduler-invariant, so the fast path is safe to benchmark on.
platform::FleetConfig campaign_estate_config(std::size_t devices) {
    platform::FleetConfig config;
    config.device_count = devices;
    config.resilient = true;
    config.seed = 53;
    config.interrupt_workload = true;
    config.quiescence = true;
    config.worker_threads = 0;
    return config;
}

/// Detection latency (first contributing evidence -> detection) of the
/// first campaign of `kind`, or 0 when none was detected.
std::uint64_t campaign_latency(const platform::Fleet& fleet,
                               platform::CampaignKind kind) {
    for (const auto& c : fleet.campaign_monitor().campaigns()) {
        if (c.kind == kind) return c.detected_at - c.first_at;
    }
    return 0;
}

bool campaign_detected(const platform::Fleet& fleet,
                       platform::CampaignKind kind) {
    for (const auto& c : fleet.campaign_monitor().campaigns()) {
        if (c.kind == kind) return true;
    }
    return false;
}

/// The E13d estate: passive interrupt-driven control nodes — the
/// configuration a million-device deployment actually looks like
/// (cores in WFI between timer interrupts, observability turned down).
platform::FleetConfig passive_estate_config(std::size_t devices,
                                            bool quiescence) {
    platform::FleetConfig config;
    config.device_count = devices;
    config.resilient = false;
    config.seed = 47;
    config.metrics = false;
    config.flight_recorder_capacity = 0;
    config.interrupt_workload = true;
    config.quiescence = quiescence;
    return config;
}

/// Architectural digest of the whole estate: per-device retired
/// instructions, cycle counters, service counters, sensor sample
/// counts and actuator setpoints, folded in device-index order. The
/// quiescence differential gate compares digests, so a fast-forwarded
/// run must reproduce per-cycle execution bit-for-bit to pass.
crypto::Hash256 estate_digest(platform::Fleet& fleet) {
    crypto::Sha256 h;
    Bytes word(8);
    const auto fold = [&](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            word[static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(v >> (8 * i));
        }
        h.update(word);
    };
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        platform::Node& node = fleet.device(i);
        fold(node.sim.now());
        fold(node.cpu.csr(isa::kCsrMcycle));
        fold(node.cpu.csr(isa::kCsrMinstret));
        fold(node.stats().control_iterations);
        fold(node.sensor.samples());
        fold(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(dev::to_fixed(node.actuator.current()))));
        fold(node.actuator.command_count());
    }
    return h.finish();
}

/// One full operator epoch: advance the fleet, sweep it, collect
/// health. This is the unit the scaling table rates in devices/sec.
platform::SweepResult fleet_epoch(platform::Fleet& fleet,
                                  sim::Cycle cycles) {
    fleet.run(cycles);
    platform::SweepResult sweep = fleet.attestation_sweep();
    (void)fleet.collect_health();
    return sweep;
}

}  // namespace

int main() {
    bench::section("E13a — Compromise localisation in a 8-device fleet");
    {
        platform::FleetConfig config;
        config.device_count = 8;
        config.resilient = true;
        config.seed = 44;
        platform::Fleet fleet(config);
        fleet.run(20000);
        fleet.checkpoint_all();

        // Wave of trouble: firmware implant on #2, key loss on #5,
        // runtime breach on #6.
        crypto::Hash256 implant;
        implant.fill(0x66);
        fleet.device(2).pcrs.extend(boot::PcrBank::kPcrFirmware, implant);
        fleet.device(5).tee_ram.fill(0);
        attack::StackSmashAttack smash;
        smash.launch(fleet.device(6), fleet.device(6).sim.now() + 2000);
        fleet.run(40000);

        const auto sweep = fleet.attestation_sweep();
        const auto health = fleet.collect_health();

        bench::Table table({"device", "attestation verdict", "SSM health",
                            "report verified", "evidence records",
                            "ctrl iterations"});
        for (std::size_t i = 0; i < fleet.size(); ++i) {
            table.row("device-" + std::to_string(i),
                      net::attest_result_name(sweep.verdicts[i]),
                      core::health_state_name(health.states[i]),
                      bench::yesno(health.report_valid[i]),
                      fleet.device(i).ssm->evidence().size(),
                      fleet.device(i).stats().control_iterations);
        }
        table.print();
        std::cout << "\nsweep: " << sweep.trusted << " trusted, "
                  << sweep.flagged << " flagged; flagged devices:";
        for (const auto i : sweep.flagged_devices()) std::cout << " #" << i;
        std::cout << "\nExpected shape: exactly the implanted (#2) and "
                     "key-wiped (#5) devices fail attestation; the runtime "
                     "breach on #6 passes attestation (firmware unchanged) "
                     "but its signed evidence log carries the incident — "
                     "the two mechanisms localise different attack stages.\n";
    }

    bench::section("E13b — Sweep cost vs fleet size");
    {
        bench::Table table({"devices", "enrol+warmup wall (ms)",
                            "sweep wall (ms)", "all trusted"});
        for (const std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
            platform::FleetConfig config;
            config.device_count = n;
            config.resilient = true;
            config.seed = 45;
            const auto t0 = std::chrono::steady_clock::now();
            platform::Fleet fleet(config);
            fleet.run(5000);
            const auto t1 = std::chrono::steady_clock::now();
            const auto sweep = fleet.attestation_sweep();
            const auto t2 = std::chrono::steady_clock::now();
            table.row(
                n,
                bench::fmt_double(
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count(),
                    1),
                bench::fmt_double(
                    std::chrono::duration<double, std::milli>(t2 - t1)
                        .count(),
                    1),
                bench::yesno(sweep.trusted == n));
        }
        table.print();
        std::cout << "\nExpected shape: both costs linear in fleet size "
                     "(per-device HMAC quote + verify); attestation "
                     "scales to fleets without per-device state explosion."
                     "\n";
    }

    bench::section("E13c — Parallel scaling: devices/sec vs worker threads");
    {
        const std::size_t hw = std::max(
            1u, std::thread::hardware_concurrency());
        std::cout << "hardware concurrency: " << hw << " (threads=hw row)\n"
                  << "epoch = enrol once, then run 2000 cycles + "
                     "attestation sweep + health collection\n\n";

        constexpr sim::Cycle kEpochCycles = 2000;
        // Each (devices, threads) point runs twice: guest-code
        // translation on (the default) and off (interpreter ablation,
        // docs/EXECUTION.md). Both must produce the serial verdicts —
        // translation is a speed knob, never a semantics knob.
        bench::Table table({"devices", "threads", "enrol (ms)",
                            "epoch xlat (ms)", "epoch interp (ms)",
                            "devices/sec xlat", "devices/sec interp",
                            "thread speedup", "xlat speedup",
                            "verdicts == serial"});
        for (const std::size_t devices :
             {std::size_t{8}, std::size_t{64}, std::size_t{256},
              std::size_t{1024}}) {
            platform::SweepResult serial_sweep;
            double serial_epoch_s = 0.0;

            std::vector<std::size_t> thread_counts{1, 2, 4};
            if (std::find(thread_counts.begin(), thread_counts.end(), hw) ==
                thread_counts.end()) {
                thread_counts.push_back(hw);
            }
            for (const std::size_t threads : thread_counts) {
                platform::FleetConfig config;
                config.device_count = devices;
                config.resilient = true;
                config.seed = 46;
                config.worker_threads = threads;

                const auto t0 = std::chrono::steady_clock::now();
                platform::Fleet fleet(config);
                const double enrol_s = seconds_since(t0);

                const auto t1 = std::chrono::steady_clock::now();
                const platform::SweepResult sweep =
                    fleet_epoch(fleet, kEpochCycles);
                const double epoch_s = seconds_since(t1);

                // Same fleet, guest translation off: every device
                // interprets every instruction.
                config.translate = false;
                platform::Fleet interp_fleet(config);
                const auto t2 = std::chrono::steady_clock::now();
                const platform::SweepResult interp_sweep =
                    fleet_epoch(interp_fleet, kEpochCycles);
                const double interp_epoch_s = seconds_since(t2);

                // Determinism contract: every thread count — and both
                // execution engines — reproduces the serial verdict
                // vector bit-for-bit.
                bool matches_serial = true;
                if (threads == 1) {
                    serial_sweep = sweep;
                    serial_epoch_s = epoch_s;
                } else {
                    matches_serial = sweep.verdicts == serial_sweep.verdicts;
                }
                matches_serial = matches_serial &&
                                 interp_sweep.verdicts == sweep.verdicts;

                table.row(devices,
                          threads == hw && threads != 1 &&
                                  threads != 2 && threads != 4
                              ? std::to_string(threads) + " (hw)"
                              : std::to_string(threads),
                          bench::fmt_double(enrol_s * 1e3, 1),
                          bench::fmt_double(epoch_s * 1e3, 1),
                          bench::fmt_double(interp_epoch_s * 1e3, 1),
                          bench::fmt_double(
                              static_cast<double>(devices) / epoch_s, 0),
                          bench::fmt_double(
                              static_cast<double>(devices) / interp_epoch_s,
                              0),
                          bench::fmt_double(serial_epoch_s / epoch_s, 2),
                          bench::fmt_double(interp_epoch_s / epoch_s, 2),
                          bench::yesno(matches_serial));
            }
        }
        table.print();
        std::cout << "\nExpected shape: near-linear thread speedup up to "
                     "the physical core count (device-nodes are fully "
                     "thread-confined; no locks on the hot path), flat "
                     "beyond it; translation adds a further per-core "
                     "multiplier on the guest-execution share of the "
                     "epoch (attestation crypto is unaffected). The "
                     "verdict column must read yes everywhere — neither "
                     "parallelism nor the execution engine ever changes "
                     "results, only wall time.\n";
    }

    bench::JsonReporter json;
    json.field("bench", "fleet");
    bool e13d_ok = true;

    bench::section(
        "E13d — Quiescence speedup: WFI estate, per-cycle vs fast-forward");
    {
        // Fixed size so the number is comparable across runs — this is
        // the series the CI regression gate tracks.
        constexpr std::size_t kDevices = 64;
        constexpr sim::Cycle kCycles = 50000;

        platform::Fleet baseline(passive_estate_config(kDevices, false));
        const auto t0 = std::chrono::steady_clock::now();
        baseline.run(kCycles);
        const double percycle_s = seconds_since(t0);
        const crypto::Hash256 baseline_digest = estate_digest(baseline);

        platform::Fleet quick(passive_estate_config(kDevices, true));
        const auto t1 = std::chrono::steady_clock::now();
        quick.run(kCycles);
        const double quick_s = seconds_since(t1);
        const crypto::Hash256 quick_digest = estate_digest(quick);

        const bool deterministic = baseline_digest == quick_digest;
        const double speedup = percycle_s / quick_s;
        const double node_cycles = static_cast<double>(kDevices) *
                                   static_cast<double>(kCycles);
        const double skip_fraction =
            static_cast<double>(quick.fleet_cycles_skipped()) / node_cycles;

        bench::Table table({"scheduler", "wall (ms)", "node-cycles/sec",
                            "cycles skipped", "digest == per-cycle"});
        table.row("per-cycle", bench::fmt_double(percycle_s * 1e3, 1),
                  bench::fmt_double(node_cycles / percycle_s, 0),
                  std::uint64_t{0}, "(reference)");
        table.row("quiescence", bench::fmt_double(quick_s * 1e3, 1),
                  bench::fmt_double(node_cycles / quick_s, 0),
                  quick.fleet_cycles_skipped(),
                  bench::yesno(deterministic));
        table.print();
        std::cout << "\nspeedup: " << bench::fmt_double(speedup, 2)
                  << "x (gate: >= 5x); skipped "
                  << bench::fmt_double(skip_fraction * 100.0, 1)
                  << "% of node-cycles\n"
                  << "Expected shape: WFI cores plus event-horizon "
                     "fast-forward elide almost every idle tick; the "
                     "digest column must read yes — fast-forward is a "
                     "speed knob, never a semantics knob.\n";

        if (!deterministic || speedup < 5.0) e13d_ok = false;
        json.metric("e13d_speedup_x", speedup);
        json.metric("e13d_percycle_node_cycles_per_s",
                    node_cycles / percycle_s);
        json.metric("e13d_quiescence_node_cycles_per_s",
                    node_cycles / quick_s);
        json.metric("e13d_skip_fraction", skip_fraction);
        json.field("e13d_determinism", deterministic ? "ok" : "MISMATCH");
    }

    bench::section("E13d — Fleet memory diet: bytes/node at estate scale");
    {
        constexpr sim::Cycle kCycles = 4000;
        const std::vector<std::size_t> counts = e13d_device_counts();

        bench::Table table({"devices", "enrol (s)", "run (s)",
                            "node-cycles/sec", "rss bytes/node",
                            "resident ram bytes/node", "fw images",
                            "fw store KiB"});
        std::size_t largest = 0;
        for (const std::size_t devices : counts) {
            const std::size_t rss_before = bench::current_rss_bytes();
            const auto t0 = std::chrono::steady_clock::now();
            platform::Fleet fleet(passive_estate_config(devices, true));
            const double enrol_s = seconds_since(t0);

            const auto t1 = std::chrono::steady_clock::now();
            fleet.run(kCycles);
            const double run_s = seconds_since(t1);
            const std::size_t rss_after = bench::current_rss_bytes();

            // Allocator reuse makes the delta approximate (and the
            // probe reads 0 off-Linux); sizes run ascending so the
            // largest — the number that matters — is the most honest.
            const double rss_per_node =
                rss_after > rss_before
                    ? static_cast<double>(rss_after - rss_before) /
                          static_cast<double>(devices)
                    : 0.0;
            const double node_cycles = static_cast<double>(devices) *
                                       static_cast<double>(kCycles);
            const double ram_per_node =
                static_cast<double>(fleet.fleet_resident_ram_bytes()) /
                static_cast<double>(devices);

            table.row(devices, bench::fmt_double(enrol_s, 2),
                      bench::fmt_double(run_s, 2),
                      bench::fmt_double(node_cycles / run_s, 0),
                      bench::fmt_double(rss_per_node, 0),
                      bench::fmt_double(ram_per_node, 0),
                      fleet.firmware_store().size(),
                      fleet.firmware_store().stored_bytes() / 1024);

            const std::string tag = std::to_string(devices);
            json.metric("e13d_mem_" + tag + "_rss_bytes_per_node",
                        rss_per_node);
            json.metric("e13d_mem_" + tag + "_ram_bytes_per_node",
                        ram_per_node);
            json.metric("e13d_mem_" + tag + "_node_cycles_per_s",
                        node_cycles / run_s);
            json.metric("e13d_mem_" + tag + "_enrol_s", enrol_s);
            largest = std::max(largest, devices);
        }
        table.print();
        json.metric("e13d_devices_max", static_cast<double>(largest));
        json.metric("peak_rss_bytes",
                    static_cast<double>(bench::peak_rss_bytes()));
        std::cout << "\nExpected shape: bytes/node flat (page-table "
                     "overhead plus touched pages) rather than linear in "
                     "firmware size — the estate shares one "
                     "copy-on-write image per distinct firmware.\n";
    }

    bench::section(
        "E13e — Shared analysis artifact & proof-carrying check elision");
    {
        // Every device runs the same firmware, so the estate should
        // prove it exactly once: one abstract-interpretation artifact
        // in the fleet analysis cache, every other admission/translation
        // a cache hit. Elision is then A/B'd with the same estate
        // digest contract quiescence uses — a speed knob, never a
        // semantics knob.
        constexpr std::size_t kDevices = 64;
        constexpr sim::Cycle kCycles = 50000;

        platform::Fleet elide_fleet(passive_estate_config(kDevices, true));
        const auto t0 = std::chrono::steady_clock::now();
        elide_fleet.run(kCycles);
        const double elide_s = seconds_since(t0);
        const crypto::Hash256 elide_digest = estate_digest(elide_fleet);

        platform::FleetConfig off_config =
            passive_estate_config(kDevices, true);
        off_config.elide_proven_checks = false;
        platform::Fleet checked_fleet(off_config);
        const auto t1 = std::chrono::steady_clock::now();
        checked_fleet.run(kCycles);
        const double checked_s = seconds_since(t1);
        const crypto::Hash256 checked_digest = estate_digest(checked_fleet);

        const std::size_t artifacts = elide_fleet.analysis_cache().size();
        const std::uint64_t cache_hits = elide_fleet.analysis_cache().hits();
        const bool deterministic = elide_digest == checked_digest;
        const bool shared = artifacts == 1 && cache_hits >= kDevices - 1;
        const double speedup = checked_s / elide_s;

        bench::Table table({"execution", "wall (ms)", "proof artifacts",
                            "cache hits", "digest == checks-on"});
        table.row("checks on", bench::fmt_double(checked_s * 1e3, 1),
                  checked_fleet.analysis_cache().size(),
                  checked_fleet.analysis_cache().hits(), "(reference)");
        table.row("elision", bench::fmt_double(elide_s * 1e3, 1), artifacts,
                  cache_hits, bench::yesno(deterministic));
        table.print();
        std::cout << "\nelision speedup: " << bench::fmt_double(speedup, 2)
                  << "x on this ALU-bound estate (the per-access win "
                     "tracks the workload's memory-op share — see E15b "
                     "for the memory-bound bound)\n"
                  << "Expected shape: exactly 1 proof artifact for "
                  << kDevices << " devices (one distinct firmware), all "
                  << "other lookups hits; the digest column must read "
                     "yes — elided and checked execution are "
                     "architecturally identical.\n";

        if (!deterministic || !shared) e13d_ok = false;
        json.metric("e13e_proof_artifacts", static_cast<double>(artifacts));
        json.metric("e13e_proof_cache_hits",
                    static_cast<double>(cache_hits));
        json.metric("e13e_elision_speedup_x", speedup);
        json.field("e13e_determinism", deterministic ? "ok" : "MISMATCH");
        json.field("e13e_artifact_sharing", shared ? "ok" : "MISMATCH");
    }

    bool e16_ok = true;

    bench::section(
        "E16 — Campaign detection: latency vs fleet size (SIEM export)");
    {
        // All three campaign classes on estates of increasing size. The
        // cycle-domain detection latency should be INVARIANT in fleet
        // size (the correlation engine counts devices, not records);
        // what scales is the wall cost of the drain/verify pipeline.
        const std::vector<std::size_t> counts = e16_device_counts();
        constexpr sim::Cycle kCycles = 20000;

        bench::Table table({"devices", "enrol (s)", "run (s)",
                            "drain (ms)", "records", "records/sec",
                            "verify (ms)", "worm lat (cyc)",
                            "replay lat (cyc)", "downgrade lat (cyc)",
                            "chain ok"});
        const std::size_t largest =
            *std::max_element(counts.begin(), counts.end());
        for (const std::size_t devices : counts) {
            const auto t0 = std::chrono::steady_clock::now();
            platform::Fleet fleet(campaign_estate_config(devices));
            const double enrol_s = seconds_since(t0);

            attack::WormCampaign worm;
            attack::CoordinatedReplayCampaign::Options replay_opt;
            replay_opt.replay_at = 15000;
            replay_opt.stagger = 20;
            // The correlation bar needs >= 8 devices; capping the
            // replay taps keeps the wire overhead flat at estate scale.
            replay_opt.device_count = std::min<std::size_t>(devices, 512);
            attack::CoordinatedReplayCampaign replay(replay_opt);
            attack::StaggeredDowngradeCampaign downgrade;
            worm.launch(fleet);
            replay.launch(fleet);
            downgrade.launch(fleet);

            const auto t1 = std::chrono::steady_clock::now();
            fleet.run(kCycles);
            const double run_s = seconds_since(t1);

            const auto t2 = std::chrono::steady_clock::now();
            const std::size_t records = fleet.drain_siem();
            const double drain_s = seconds_since(t2);

            const auto t3 = std::chrono::steady_clock::now();
            const obs::SiemVerifyResult verdict = obs::SiemStream::verify(
                fleet.siem_stream().jsonl(), fleet.siem_key());
            const double verify_s = seconds_since(t3);

            const std::uint64_t worm_lat =
                campaign_latency(fleet, platform::CampaignKind::kWorm);
            const std::uint64_t replay_lat = campaign_latency(
                fleet, platform::CampaignKind::kCoordinatedReplay);
            const std::uint64_t downgrade_lat = campaign_latency(
                fleet, platform::CampaignKind::kStaggeredDowngrade);
            const bool all_detected =
                campaign_detected(fleet, platform::CampaignKind::kWorm) &&
                campaign_detected(
                    fleet, platform::CampaignKind::kCoordinatedReplay) &&
                campaign_detected(
                    fleet, platform::CampaignKind::kStaggeredDowngrade);
            if (!all_detected || !verdict.ok) e16_ok = false;

            table.row(devices, bench::fmt_double(enrol_s, 2),
                      bench::fmt_double(run_s, 2),
                      bench::fmt_double(drain_s * 1e3, 1), records,
                      bench::fmt_double(
                          static_cast<double>(records) / drain_s, 0),
                      bench::fmt_double(verify_s * 1e3, 1), worm_lat,
                      replay_lat, downgrade_lat,
                      bench::yesno(verdict.ok));

            const std::string tag = std::to_string(devices);
            json.metric("e16_" + tag + "_records",
                        static_cast<double>(records));
            json.metric("e16_" + tag + "_drain_ms", drain_s * 1e3);
            json.metric("e16_" + tag + "_records_per_s",
                        static_cast<double>(records) / drain_s);
            json.metric("e16_" + tag + "_verify_ms", verify_s * 1e3);
            json.metric("e16_" + tag + "_worm_latency_cycles",
                        static_cast<double>(worm_lat));
            json.metric("e16_" + tag + "_replay_latency_cycles",
                        static_cast<double>(replay_lat));
            json.metric("e16_" + tag + "_downgrade_latency_cycles",
                        static_cast<double>(downgrade_lat));

            if (devices == largest) {
                // Headline series for the CI regression gate, plus the
                // jq-checked status fields. Emitted only for the largest
                // size so the JSON holds each key exactly once.
                json.metric("e16_detection_latency_cycles",
                            static_cast<double>(worm_lat));
                json.metric("e16_campaigns",
                            static_cast<double>(
                                fleet.campaign_monitor().campaigns().size()));
                json.field("e16_chain", verdict.ok ? "ok" : "FAILED");
                json.field("e16_worm",
                           campaign_detected(fleet,
                                             platform::CampaignKind::kWorm)
                               ? "detected"
                               : "MISSING");
                // Optional stream artefact for CI upload.
                if (const char* dump = std::getenv("CRES_SIEM_JSONL")) {
                    std::ofstream out(dump, std::ios::binary);
                    out << fleet.siem_stream().jsonl();
                    std::cout << "wrote SIEM stream (" << devices
                              << " devices) to " << dump << "\n";
                }
            }
        }
        table.print();
        json.metric("e16_devices_max", static_cast<double>(largest));
        std::cout << "\nExpected shape: detection latency flat in fleet "
                     "size (the bar is device count, not record count); "
                     "drain and offline verify scale linearly with "
                     "records. chain ok must read yes everywhere.\n";
    }

    bench::section("E16 — Worm detection latency vs infection rate");
    {
        // Infection rate = worm fanout: how many fresh victims each
        // infected device probes per generation. Faster spread crosses
        // the 8-device component bar in fewer hops.
        constexpr std::size_t kDevices = 256;
        bench::Table table({"fanout", "infections", "first probe (cyc)",
                            "detected at (cyc)", "latency (cyc)",
                            "detected"});
        for (const std::size_t fanout :
             {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
            platform::Fleet fleet(campaign_estate_config(kDevices));
            attack::WormCampaign::Options opt;
            opt.fanout = fanout;
            attack::WormCampaign worm(opt);
            worm.launch(fleet);
            fleet.run(15000);
            (void)fleet.drain_siem();

            const bool detected =
                campaign_detected(fleet, platform::CampaignKind::kWorm);
            const std::uint64_t latency =
                campaign_latency(fleet, platform::CampaignKind::kWorm);
            std::uint64_t detected_at = 0;
            for (const auto& c : fleet.campaign_monitor().campaigns()) {
                if (c.kind == platform::CampaignKind::kWorm) {
                    detected_at = c.detected_at;
                }
            }
            if (!detected) e16_ok = false;

            table.row(fanout, worm.infections(), worm.first_probe_at(),
                      detected_at, latency, bench::yesno(detected));
            json.metric("e16_worm_f" + std::to_string(fanout) +
                            "_latency_cycles",
                        static_cast<double>(latency));
        }
        table.print();
        std::cout << "\nExpected shape: latency falls as fanout rises — "
                     "an aggressive worm is caught in fewer generations; "
                     "a slow one takes longer but is still invisible to "
                     "every individual device either way.\n";
    }

    bool e17_ok = true;

    bench::section(
        "E17 — Causal tracing: provenance accuracy & drain overhead");
    {
        // The same worm on two otherwise identical estates: one with
        // trace propagation on (the default), one with causal_tracing
        // off (v1 wire bytes, blind union-find fallback). Accuracy is
        // checked edge-for-edge against the campaign's own ground
        // truth; the traced drain must stay within ~10% of the
        // untraced baseline.
        const std::size_t devices = e17_device_count();
        constexpr sim::Cycle kCycles = 20000;

        platform::Fleet traced(campaign_estate_config(devices));
        attack::WormCampaign traced_worm;
        traced_worm.launch(traced);
        const auto t0 = std::chrono::steady_clock::now();
        traced.run(kCycles);
        const double traced_run_s = seconds_since(t0);
        const auto t1 = std::chrono::steady_clock::now();
        const std::size_t traced_records = traced.drain_siem();
        const double traced_drain_s = seconds_since(t1);

        // Accuracy vs ground truth: patient zero, depth and the exact
        // (parent, child, hop) edge set the campaign actually injected.
        const platform::ProvenanceReport& report =
            traced.campaign_monitor().provenance();
        bool exact =
            report.traced && report.exact &&
            report.patient_zero ==
                static_cast<std::uint32_t>(traced_worm.patient_zero()) &&
            report.max_hop == traced_worm.max_depth() &&
            report.edges.size() == traced_worm.edges().size();
        if (exact) {
            std::vector<std::uint64_t> got;
            std::vector<std::uint64_t> want;
            const auto key = [](std::uint32_t parent, std::uint32_t child,
                                std::uint32_t hop) {
                return (std::uint64_t{parent} << 40) |
                       (std::uint64_t{child} << 8) | hop;
            };
            for (const auto& e : report.edges) {
                got.push_back(key(e.parent, e.child, e.hop));
            }
            for (const auto& e : traced_worm.edges()) {
                want.push_back(key(e.parent, e.child, e.hop));
            }
            std::sort(got.begin(), got.end());
            std::sort(want.begin(), want.end());
            exact = got == want;
        }

        platform::FleetConfig off_config = campaign_estate_config(devices);
        off_config.causal_tracing = false;
        platform::Fleet untraced(off_config);
        attack::WormCampaign untraced_worm;
        untraced_worm.launch(untraced);
        const auto t2 = std::chrono::steady_clock::now();
        untraced.run(kCycles);
        const double untraced_run_s = seconds_since(t2);
        const auto t3 = std::chrono::steady_clock::now();
        const std::size_t untraced_records = untraced.drain_siem();
        const double untraced_drain_s = seconds_since(t3);

        // Off-knob sanity: no trace bytes reach the reconstructor and
        // the union-find fallback still detects the campaign.
        const bool off_clean =
            !untraced.campaign_monitor().provenance().traced &&
            campaign_detected(untraced, platform::CampaignKind::kWorm);
        const double drain_ratio = untraced_drain_s > 0.0
                                       ? traced_drain_s / untraced_drain_s
                                       : 0.0;
        if (!exact || !off_clean) e17_ok = false;

        bench::Table table({"mode", "devices", "run (ms)", "drain (ms)",
                            "records", "edges", "depth", "provenance"});
        table.row("traced", devices,
                  bench::fmt_double(traced_run_s * 1e3, 1),
                  bench::fmt_double(traced_drain_s * 1e3, 1),
                  traced_records, report.edges.size(), report.max_hop,
                  exact ? "exact" : "MISSING");
        table.row("untraced", devices,
                  bench::fmt_double(untraced_run_s * 1e3, 1),
                  bench::fmt_double(untraced_drain_s * 1e3, 1),
                  untraced_records, 0, 0,
                  off_clean ? "union-find" : "MISSING");
        table.print();

        json.field("e17_provenance", exact ? "exact" : "MISSING");
        json.field("e17_untraced_fallback",
                   off_clean ? "union-find" : "MISSING");
        json.metric("e17_devices", static_cast<double>(devices));
        json.metric("e17_edges",
                    static_cast<double>(report.edges.size()));
        json.metric("e17_max_hop", static_cast<double>(report.max_hop));
        json.metric("e17_traced_run_ms", traced_run_s * 1e3);
        json.metric("e17_traced_drain_ms", traced_drain_s * 1e3);
        json.metric("e17_untraced_run_ms", untraced_run_s * 1e3);
        json.metric("e17_untraced_drain_ms", untraced_drain_s * 1e3);
        json.metric("e17_drain_overhead_ratio", drain_ratio);
        std::cout << "\nExpected shape: the reconstructed DAG matches the "
                     "campaign's ground truth edge-for-edge (provenance "
                     "reads exact), the off-knob estate falls back to the "
                     "blind union-find verdict with zero trace bytes, and "
                     "the traced drain stays within ~10% of the untraced "
                     "baseline — the extension costs 28 bytes per frame "
                     "plus one branch per drained record.\n";
    }

    const char* path_env = std::getenv("CRES_BENCH_JSON");
    const std::string path =
        path_env != nullptr ? path_env : "BENCH_fleet.json";
    if (json.write(path)) {
        std::cout << "\nwrote " << path << "\n";
    }
    return (e13d_ok && e16_ok && e17_ok) ? 0 : 1;
}
