// E8a — Remote attestation: quote latency vs measured state size, and
// the verifier's discrimination (healthy device trusted, modified
// firmware / forged tag / replayed quote rejected).
#include <chrono>

#include "bench_util.h"
#include "boot/measured.h"
#include "mem/ram.h"
#include "net/attestation.h"
#include "tee/tee.h"

namespace {

using namespace cres;

}  // namespace

int main() {
    bench::section("E8a-i — Measured-boot + quote cost vs measured bytes");
    {
        bench::Table table({"measured state (KiB)", "extends",
                            "measure+quote wall time (us)"});
        for (const std::size_t kib : {4u, 32u, 128u, 512u, 1024u}) {
            mem::Bus bus;
            mem::Ram secure_ram("tee_ram", 0x1000);
            bus.map(mem::RegionConfig{"tee_ram", 0x5000'0000, 0x1000, true,
                                      false},
                    secure_ram);
            tee::Tee device_tee(bus, 0x5000'0000, 0x1000);
            device_tee.provision_key("attest", to_bytes("attest-key"));

            const auto t0 = std::chrono::steady_clock::now();
            boot::PcrBank pcrs;
            // Measure the state in 4 KiB extents (as a boot chain would).
            const Bytes chunk(4096, 0x5a);
            const std::size_t extents = kib / 4;
            for (std::size_t i = 0; i < extents; ++i) {
                pcrs.extend(boot::PcrBank::kPcrFirmware,
                            crypto::sha256(chunk));
            }
            const auto quote =
                device_tee.quote(pcrs, to_bytes("nonce"), "attest");
            const auto t1 = std::chrono::steady_clock::now();
            const auto us =
                std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                    .count();
            table.row(kib, extents, us);
            if (!quote) return 1;
        }
        table.print();
        std::cout << "Expected shape: cost is linear in measured bytes "
                     "(hashing); the quote itself is constant-cost.\n";
    }

    bench::section("E8a-ii — Verifier discrimination matrix");
    {
        mem::Bus bus;
        mem::Ram secure_ram("tee_ram", 0x1000);
        bus.map(mem::RegionConfig{"tee_ram", 0x5000'0000, 0x1000, true,
                                  false},
                secure_ram);
        tee::Tee device_tee(bus, 0x5000'0000, 0x1000);
        device_tee.provision_key("attest", to_bytes("attest-key"));

        boot::PcrBank pcrs;
        crypto::Hash256 fw;
        fw.fill(0x42);
        pcrs.extend(boot::PcrBank::kPcrFirmware, fw);

        net::AttestationVerifier verifier(pcrs.composite(),
                                          to_bytes("attest-key"), 9);

        bench::Table table({"device condition", "verifier verdict"});

        auto respond = [&](boot::PcrBank& bank) {
            const Bytes challenge = verifier.challenge();
            const auto nonce = net::decode_challenge(challenge);
            const auto quote = device_tee.quote(bank, *nonce, "attest");
            return net::encode_quote(*quote);
        };

        // Healthy.
        table.row("healthy (golden measurement)",
                  net::attest_result_name(verifier.verify(respond(pcrs))));

        // Modified firmware.
        boot::PcrBank evil = pcrs;
        crypto::Hash256 implant;
        implant.fill(0x66);
        evil.extend(boot::PcrBank::kPcrFirmware, implant);
        table.row("modified firmware (implant measured)",
                  net::attest_result_name(verifier.verify(respond(evil))));

        // Replayed quote.
        const Bytes challenge = verifier.challenge();
        const auto nonce = net::decode_challenge(challenge);
        const auto quote = device_tee.quote(pcrs, *nonce, "attest");
        const Bytes wire = net::encode_quote(*quote);
        (void)verifier.verify(wire);
        table.row("replayed quote",
                  net::attest_result_name(verifier.verify(wire)));

        // Forged tag (fresh challenge, corrupted response).
        const Bytes challenge2 = verifier.challenge();
        const auto nonce2 = net::decode_challenge(challenge2);
        const auto quote2 = device_tee.quote(pcrs, *nonce2, "attest");
        Bytes forged = net::encode_quote(*quote2);
        forged.back() ^= 1;
        table.row("forged tag",
                  net::attest_result_name(verifier.verify(forged)));

        table.print();
        std::cout << "passed=" << verifier.attestations_passed()
                  << " failed=" << verifier.attestations_failed() << "\n";
    }
    return 0;
}
