// E12 — Microarchitectural side channel (paper §IV): a prime+probe
// cache timing channel across the secure/non-secure boundary.
//  (a) the open channel leaks secret nibbles with ~100% accuracy while
//      violating no access-control rule — trust-based isolation is
//      blind to it;
//  (b) the CacheMonitor sees the prime+probe eviction signature and the
//      SSM dispatches the partition-cache countermeasure;
//  (c) with the cache partitioned, recovery collapses to chance.
#include "attack/sidechannel.h"
#include "bench_util.h"
#include "core/monitor/cache_monitor.h"
#include "core/policy/policy.h"
#include "core/response/response.h"
#include "core/ssm/ssm.h"

namespace {

using namespace cres;

}  // namespace

int main() {
    bench::section(
        "E12a — Covert-channel capacity: prime+probe nibble recovery");
    {
        bench::Table table({"cache configuration", "trials",
                            "recovery accuracy", "access violations"});
        {
            attack::SideChannelLab lab;
            const double open = lab.recovery_accuracy(256);
            table.row("shared (trust-based isolation only)", 256,
                      bench::fmt_double(open * 100.0, 1) + " %",
                      0);  // Not a single denied access: the leak is timing.
        }
        {
            attack::SideChannelLab lab;
            lab.enable_partitioning();
            const double closed = lab.recovery_accuracy(256);
            table.row("partitioned (active countermeasure)", 256,
                      bench::fmt_double(closed * 100.0, 1) + " %", 0);
        }
        table.print();
    }

    bench::section(
        "E12c — Spectre-PHT gadget [18]: speculative leak of an "
        "architecturally unreachable secret");
    {
        bench::Table table({"configuration", "secret bytes",
                            "nibbles recovered", "accuracy"});
        Rng rng(7);
        const Bytes secret = rng.bytes(16);
        {
            attack::SideChannelLab lab;
            const double acc = lab.spectre_recovery_accuracy(secret);
            table.row("shared cache (speculation unchecked)", secret.size(),
                      static_cast<std::size_t>(acc * secret.size() + 0.5),
                      bench::fmt_double(acc * 100.0, 1) + " %");
        }
        {
            attack::SideChannelLab lab;
            lab.enable_partitioning();
            const double acc = lab.spectre_recovery_accuracy(secret);
            table.row("partitioned cache", secret.size(),
                      static_cast<std::size_t>(acc * secret.size() + 0.5),
                      bench::fmt_double(acc * 100.0, 1) + " %");
        }
        table.print();
        std::cout << "The victim never architecturally reads out of "
                     "bounds; the squashed speculative window leaks "
                     "through cache state — and the partition "
                     "countermeasure closes the transmitter.\n";
    }

    bench::section(
        "E12b — Detect -> respond loop: CacheMonitor + partition-cache");
    {
        attack::SideChannelLab lab;
        sim::Simulator sim;

        core::SsmConfig config;
        config.seal_key = to_bytes("side-channel-demo");
        config.poll_interval = 10;
        core::SystemSecurityManager ssm(sim, config);

        core::CacheMonitor monitor(ssm, sim, lab.cache(),
                                   /*threshold=*/4, /*period=*/200);

        core::ResponseContext ctx;
        ctx.sim = &sim;
        ctx.cache_partitioner = [&lab](const std::string&) {
            lab.enable_partitioning();
            return std::string("cache partitioned by security domain");
        };
        core::ActiveResponseManager arm(ctx);
        ssm.set_response_executor(&arm);
        ssm.set_policy(core::PolicyEngine::parse(
            "rule covert: category=data-flow severity>=alert "
            "resource=shared-cache -> partition-cache\n"));

        sim.add_tickable(&ssm);
        sim.add_tickable(&monitor);

        // The attacker steals nibbles while the system runs.
        std::size_t stolen = 0, attempts = 0;
        Rng rng(5);
        bool partition_seen = false;
        for (int round = 0; round < 200; ++round) {
            const auto secret = static_cast<std::uint8_t>(rng.uniform(16));
            const auto guess = lab.steal_nibble(secret);
            ++attempts;
            if (guess && *guess == secret) ++stolen;
            sim.run_for(50);  // Monitors poll while the theft continues.
            if (!partition_seen && lab.cache().partitioned()) {
                partition_seen = true;
                std::cout << "partition-cache response landed after "
                          << attempts << " theft attempts (cycle "
                          << sim.now() << ")\n";
            }
        }

        std::cout << "nibbles recovered: " << stolen << "/" << attempts
                  << " (" << bench::fmt_double(100.0 * stolen / attempts, 1)
                  << " %)\n";
        std::cout << "eviction storms flagged: " << monitor.storms_detected()
                  << ", responses executed: " << arm.total()
                  << ", cache partitioned: "
                  << bench::yesno(lab.cache().partitioned()) << "\n";
        std::cout << "\nExpected shape: near-perfect recovery for the "
                     "handful of rounds before the monitor's first poll, "
                     "then the partition lands and every later attempt "
                     "fails — detection plus active response closes a "
                     "channel that access control never saw.\n";
    }
    return 0;
}
