// E6 — Continuity of data stream / evidence for cyber forensics: the
// paper's headline gap ("no existing mechanism provides continuity of
// data stream or security once trust has broken"). We breach both
// platforms, then play the forensic analyst: how many records from the
// attack window survive, do they cover the attack era, and can their
// integrity be proven to a third party?
#include "attack/attacks.h"
#include "bench_util.h"
#include "platform/scenario.h"

namespace {

using namespace cres;

struct Forensics {
    std::size_t total_records = 0;
    std::size_t attack_window_records = 0;
    bool pre_attack_history = false;
    bool chain_verifies = false;
    bool seal_verifies = false;
    bool tamper_detectable = false;
};

Forensics investigate(bool resilient, bool reboot_happens,
                      std::uint64_t seed) {
    platform::ScenarioConfig config;
    config.node.name = resilient ? "res" : "pas";
    config.node.resilient = resilient;
    config.warmup = 20000;
    config.horizon = 140000;
    config.seed = seed;

    platform::Scenario scenario(config);
    // A hang forces the passive platform through its watchdog reboot
    // (wiping volatile telemetry); a smash provides the breach story.
    attack::StackSmashAttack smash;
    attack::TaskHangAttack hang;
    if (reboot_happens) {
        hang.launch(scenario.node(), 80000);
    }
    (void)scenario.run(&smash, 30000);

    Forensics f;
    auto& node = scenario.node();
    if (node.ssm) {
        const auto& log = node.ssm->evidence();
        f.total_records = log.size();
        for (const auto& r : log.records()) {
            if (r.at >= 30000) ++f.attack_window_records;
            if (r.at < 30000) f.pre_attack_history = true;
        }
        f.chain_verifies = log.verify_chain();
        // The signed health report binds the evidence head to the SSM's
        // sealing identity; SsmFixture tests verify it cryptographically.
        f.seal_verifies = f.chain_verifies;
        // The forensic property that matters: tampering must be visible.
        core::EvidenceLog copy = log;
        if (copy.size() > 2) {
            copy.tamper_detail(1, "scrubbed by malware");
            f.tamper_detectable = !copy.verify_chain();
        }
    } else {
        f.total_records = node.trace.size();
        for (const auto& r : node.trace.records()) {
            if (r.at >= 30000) ++f.attack_window_records;
            if (r.at < 30000) f.pre_attack_history = true;
        }
        f.chain_verifies = false;   // No integrity structure at all.
        f.seal_verifies = false;
        f.tamper_detectable = false;  // Edits are undetectable.
    }
    return f;
}

}  // namespace

int main() {
    bench::section(
        "E6 — Evidence continuity across a breach (forensic view)");

    bench::Table table({"platform", "scenario", "records", "attack-window",
                        "pre-attack history", "chain verifies",
                        "tamper detectable"});

    const Forensics passive_quiet = investigate(false, false, 91);
    const Forensics passive_reboot = investigate(false, true, 91);
    const Forensics resilient_quiet = investigate(true, false, 91);
    const Forensics resilient_reboot = investigate(true, true, 91);

    auto add = [&table](const std::string& platform,
                        const std::string& scenario, const Forensics& f) {
        table.row(platform, scenario, f.total_records,
                  f.attack_window_records, bench::yesno(f.pre_attack_history),
                  bench::yesno(f.chain_verifies),
                  bench::yesno(f.tamper_detectable));
    };
    add("passive", "breach only", passive_quiet);
    add("passive", "breach + reboot", passive_reboot);
    add("resilient", "breach only", resilient_quiet);
    add("resilient", "breach + hang", resilient_reboot);
    table.print();

    std::cout << "\nExpected shape: the passive platform's telemetry is "
                 "volatile (a reboot erases the attack era entirely) and "
                 "carries no integrity structure, so even surviving records "
                 "prove nothing. The resilient platform's hash-chained log "
                 "covers before/during/after the breach, survives recovery, "
                 "and any tampering breaks the chain.\n";
    return 0;
}
