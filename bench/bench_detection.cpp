// E3 — Detection latency per attack class on the resilient platform:
// cycles from attack launch to the first policy dispatch, plus the
// detection rate across seeds. The paper claims continuous monitoring
// yields prompt detection of diverse attack classes; this quantifies it.
#include <algorithm>
#include <functional>
#include <memory>

#include "attack/attacks.h"
#include "bench_util.h"
#include "platform/scenario.h"

namespace {

using namespace cres;

struct AttackFactory {
    std::string name;
    std::function<std::unique_ptr<attack::Attack>(platform::Scenario&)> make;
};

}  // namespace

int main() {
    const std::vector<AttackFactory> factories = {
        {"stack-smash-hijack",
         [](platform::Scenario&) {
             return std::make_unique<attack::StackSmashAttack>();
         }},
        {"debug-code-injection",
         [](platform::Scenario&) {
             return std::make_unique<attack::CodeInjectionAttack>();
         }},
        {"dma-exfiltration",
         [](platform::Scenario&) {
             return std::make_unique<attack::DmaExfilAttack>();
         }},
        {"bus-attribute-tamper",
         [](platform::Scenario&) {
             return std::make_unique<attack::BusTamperAttack>();
         }},
        {"sensor-spoof",
         [](platform::Scenario&) {
             return std::make_unique<attack::SensorSpoofAttack>();
         }},
        {"m2m-replay",
         [](platform::Scenario& s) {
             return std::make_unique<attack::ReplayAttack>(s.link(), true);
         }},
        {"m2m-tamper",
         [](platform::Scenario& s) {
             return std::make_unique<attack::MitmTamperAttack>(s.link());
         }},
        {"task-hang",
         [](platform::Scenario&) {
             return std::make_unique<attack::TaskHangAttack>();
         }},
        {"voltage-glitch",
         [](platform::Scenario&) {
             return std::make_unique<attack::GlitchAttack>();
         }},
        {"bus-probe",
         [](platform::Scenario&) {
             return std::make_unique<attack::BusProbeAttack>();
         }},
    };

    constexpr int kSeeds = 5;

    bench::section(
        "E3 — Detection latency per attack class (resilient platform, " +
        std::to_string(kSeeds) + " seeds)");

    bench::Table table({"attack class", "detected", "min lat (cyc)",
                        "median lat (cyc)", "max lat (cyc)",
                        "operator alerted"});

    for (const auto& factory : factories) {
        std::vector<sim::Cycle> latencies;
        int detected = 0;
        int alerted = 0;
        for (int seed = 0; seed < kSeeds; ++seed) {
            platform::ScenarioConfig config;
            config.node.name = "det";
            config.node.resilient = true;
            config.warmup = 20000;
            config.horizon = 100000;
            config.seed = 100 + static_cast<std::uint64_t>(seed);

            platform::Scenario scenario(config);
            auto atk = factory.make(scenario);
            const auto result =
                scenario.run(atk.get(), 30000 + 137 * seed);
            if (result.detected) ++detected;
            if (result.detection_latency) {
                latencies.push_back(*result.detection_latency);
            }
            if (result.operator_alerts > 0) ++alerted;
        }
        std::sort(latencies.begin(), latencies.end());
        const auto fmt = [&](std::size_t i) {
            return latencies.empty() ? std::string("-")
                                     : std::to_string(latencies[i]);
        };
        table.row(factory.name,
                  std::to_string(detected) + "/" + std::to_string(kSeeds),
                  fmt(0), fmt(latencies.size() / 2),
                  fmt(latencies.empty() ? 0 : latencies.size() - 1),
                  std::to_string(alerted) + "/" + std::to_string(kSeeds));
    }
    table.print();

    std::cout << "\nExpected shape: every class detected in every seed; "
                 "latency within a few thousand cycles (bounded by the "
                 "attack's first observable architectural effect plus the "
                 "SSM poll interval).\n";

    // ---- E3b: latency vs SSM poll interval (figure series) ------------
    bench::section(
        "E3b — Detection latency vs SSM poll interval (stack-smash, "
        "series for a latency/throughput design trade-off figure)");
    bench::Table sweep({"poll interval (cyc)", "median latency (cyc)",
                        "leaked bytes"});
    for (const sim::Cycle poll : {1u, 10u, 50u, 200u, 1000u, 4000u}) {
        std::vector<sim::Cycle> lats;
        std::uint64_t leaked = 0;
        for (int seed = 0; seed < 3; ++seed) {
            platform::ScenarioConfig config;
            config.node.name = "sweep";
            config.node.resilient = true;
            config.node.ssm_poll_interval = poll;
            config.warmup = 20000;
            config.horizon = 90000;
            config.seed = 300 + static_cast<std::uint64_t>(seed);
            platform::Scenario scenario(config);
            attack::StackSmashAttack atk;
            const auto r = scenario.run(&atk, 30000);
            if (r.detection_latency) lats.push_back(*r.detection_latency);
            leaked += r.leaked_bytes;
        }
        std::sort(lats.begin(), lats.end());
        sweep.row(poll,
                  lats.empty() ? std::string("-")
                               : std::to_string(lats[lats.size() / 2]),
                  leaked);
    }
    sweep.print();
    std::cout << "\nExpected shape: latency grows with the poll interval; "
                 "containment (leaked bytes) stays at zero until the poll "
                 "interval exceeds the attack's exfiltration time, at which "
                 "point slow polling starts to cost real data.\n";
    return 0;
}
