// E15 — Guest-execution throughput: the two-tier engine
// (docs/EXECUTION.md) vs the plain interpreter on the control-loop
// firmware. Measures guest MIPS for three drivers over identical
// machines — tier-0 step() without a translation, tier-1 step() with
// one, and tier-2 run_steps() threaded dispatch — then asserts the
// three executions are architecturally identical (the lockstep
// contract) and writes BENCH_guest.json for the CI regression gate.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/translate.h"
#include "bench_util.h"
#include "isa/cpu.h"
#include "mem/bus.h"
#include "mem/ram.h"
#include "platform/memmap.h"
#include "platform/workload.h"

namespace {

using namespace cres;

// A CPU-only machine: app RAM plus dumb RAM-backed stand-ins for the
// peripherals the control loop touches. No simulator, no device
// models — everything outside the core is constant, so wall time is
// guest execution and nothing else.
struct GuestMachine {
    mem::Bus bus;
    mem::Ram app_ram{"app_ram", platform::kAppRamSize};
    mem::Ram wdog{"wdog", 0x100};
    mem::Ram sensor{"sensor", 0x100};
    mem::Ram actuator{"actuator", 0x100};
    isa::Cpu cpu{"cpu", bus};
    std::uint64_t heartbeats = 0;

    explicit GuestMachine(const isa::Program& program, bool translate) {
        bus.map({"app_ram", platform::kAppRamBase, platform::kAppRamSize,
                 false, false},
                app_ram);
        bus.map({"wdog", platform::kWdogBase, 0x100, false, false}, wdog);
        bus.map({"sensor", platform::kSensorBase, 0x100, false, false},
                sensor);
        bus.map({"actuator", platform::kActuatorBase, 0x100, false, false},
                actuator);
        cpu.set_ecall_handler([this](isa::Cpu&, std::uint16_t) {
            ++heartbeats;  // All services handled; no architectural trap.
            return true;
        });
        app_ram.load(program.origin - platform::kAppRamBase, program.code);
        cpu.reset(program.origin);
        if (translate) {
            cpu.install_translation(analysis::translate_image_shared(
                program.code, program.origin, program.origin));
        }
    }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

struct Throughput {
    double mips = 0.0;
    std::uint64_t instret = 0;
};

// Runs `machine` for ~min_seconds of wall time in fixed-size chunks
// and rates retired guest instructions per second.
template <typename StepChunk>
Throughput measure(GuestMachine& machine, StepChunk&& chunk,
                   double min_seconds) {
    constexpr std::uint64_t kChunk = 1u << 18;
    // Warm-up: first chunk pays one-time costs (cache fills, branch
    // predictor training for the dispatch loop).
    chunk(machine, kChunk);

    const std::uint64_t start_instret = machine.cpu.instret();
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        chunk(machine, kChunk);
        elapsed = seconds_since(t0);
    } while (elapsed < min_seconds && !machine.cpu.halted());

    Throughput out;
    out.instret = machine.cpu.instret() - start_instret;
    out.mips = static_cast<double>(out.instret) / elapsed / 1e6;
    return out;
}

void step_chunk(GuestMachine& machine, std::uint64_t steps) {
    for (std::uint64_t i = 0; i < steps; ++i) {
        if (!machine.cpu.step()) break;
    }
}

void run_steps_chunk(GuestMachine& machine, std::uint64_t steps) {
    (void)machine.cpu.run_steps(steps);
}

// Drives all three engines for exactly `events` step events each and
// checks the lockstep contract on the final state. Returns false (and
// reports) on any divergence.
bool verify_lockstep(const isa::Program& program, std::uint64_t events) {
    GuestMachine interp(program, false);
    GuestMachine tier1(program, true);
    GuestMachine tier2(program, true);
    for (std::uint64_t i = 0; i < events; ++i) {
        (void)interp.cpu.step();
        (void)tier1.cpu.step();
    }
    std::uint64_t done = 0;
    while (done < events) {
        const std::uint64_t n = tier2.cpu.run_steps(events - done);
        if (n == 0) break;
        done += n;
    }

    bool ok = true;
    auto check = [&ok](const std::string& what, std::uint64_t a,
                       std::uint64_t b, std::uint64_t c) {
        if (a != b || a != c) {
            std::cerr << "LOCKSTEP MISMATCH " << what << ": interp=" << a
                      << " tier1=" << b << " tier2=" << c << "\n";
            ok = false;
        }
    };
    check("pc", interp.cpu.pc(), tier1.cpu.pc(), tier2.cpu.pc());
    for (unsigned r = 0; r < 16; ++r) {
        check("r" + std::to_string(r), interp.cpu.reg(r), tier1.cpu.reg(r),
              tier2.cpu.reg(r));
    }
    for (std::uint16_t c = 0; c < isa::kCsrCount; ++c) {
        if (c == isa::kCsrMcycle) continue;  // step()/run_steps: no ticks.
        check("csr" + std::to_string(c), interp.cpu.csr(c), tier1.cpu.csr(c),
              tier2.cpu.csr(c));
    }
    check("instret", interp.cpu.instret(), tier1.cpu.instret(),
          tier2.cpu.instret());
    check("traps", interp.cpu.trap_count(), tier1.cpu.trap_count(),
          tier2.cpu.trap_count());
    check("heartbeats", interp.heartbeats, tier1.heartbeats,
          tier2.heartbeats);
    return ok;
}

}  // namespace

int main(int argc, char** argv) {
    // --quick: CI smoke mode; shorter timing windows, same assertions.
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const double window = quick ? 0.2 : 1.0;

    const isa::Program program = platform::control_loop_program();
    const auto image = analysis::translate_image_shared(
        program.code, program.origin, program.origin);

    bench::section("E15 — Guest execution throughput (control_loop)");
    std::cout << "firmware: " << program.code.size() << " bytes, "
              << image->translated_words << "/" << program.code.size() / 4
              << " words translated (coverage "
              << bench::fmt_double(image->coverage() * 100, 1) << "%)\n\n";

    // Lockstep first: a fast wrong engine is worthless.
    const bool lockstep_ok = verify_lockstep(program, 2'000'000);

    GuestMachine interp(program, false);
    GuestMachine tier1(program, true);
    GuestMachine tier2(program, true);
    const Throughput t0 = measure(interp, step_chunk, window);
    const Throughput t1 = measure(tier1, step_chunk, window);
    const Throughput t2 = measure(tier2, run_steps_chunk, window);

    const double speedup_step = t1.mips / t0.mips;
    const double speedup_threaded = t2.mips / t0.mips;

    bench::Table table({"engine", "driver", "guest MIPS", "speedup",
                        "translated share"});
    table.row("tier 0: interpreter", "step()", bench::fmt_double(t0.mips, 1),
              "1.00", "0%");
    table.row(
        "tier 1: translated", "step()", bench::fmt_double(t1.mips, 1),
        bench::fmt_double(speedup_step, 2),
        bench::fmt_double(
            100.0 * static_cast<double>(tier1.cpu.translated_instret()) /
                static_cast<double>(tier1.cpu.instret()),
            1) + "%");
    table.row(
        "tier 2: threaded", "run_steps()", bench::fmt_double(t2.mips, 1),
        bench::fmt_double(speedup_threaded, 2),
        bench::fmt_double(
            100.0 * static_cast<double>(tier2.cpu.translated_instret()) /
                static_cast<double>(tier2.cpu.instret()),
            1) + "%");
    table.print();

    std::cout << "\nlockstep (2M events, all regs/CSRs/counters): "
              << (lockstep_ok ? "identical" : "DIVERGED") << "\n"
              << "Expected shape: tier 1 beats the interpreter by eliding "
                 "fetch+decode; tier 2 adds threaded dispatch and the "
                 "step()-call elision for a >=10x total speedup. The "
                 "translated share tracks coverage: only the ecall "
                 "(service call) detours through the generic executor.\n";

    bench::JsonReporter json;
    json.field("bench", "guest_execution");
    json.field("workload", "control_loop_program");
    json.metric("guest_code_bytes", static_cast<double>(program.code.size()));
    json.metric("translation_coverage", image->coverage());
    json.metric("interpreter_mips", t0.mips);
    json.metric("translated_step_mips", t1.mips);
    json.metric("threaded_run_steps_mips", t2.mips);
    json.metric("speedup_translated_step", speedup_step);
    json.metric("speedup_threaded", speedup_threaded);
    json.field("lockstep", lockstep_ok ? "identical" : "diverged");

    const char* path_env = std::getenv("CRES_BENCH_JSON");
    const std::string path = path_env != nullptr ? path_env
                                                 : "BENCH_guest.json";
    if (json.write(path)) {
        std::cout << "\nwrote " << path << "\n";
    }
    return lockstep_ok ? 0 : 1;
}
