// E15 — Guest-execution throughput: the two-tier engine
// (docs/EXECUTION.md) vs the plain interpreter on the control-loop
// firmware. Measures guest MIPS for four drivers over identical
// machines — tier-0 step() without a translation, tier-1 step() with
// one, and tier-2 run_steps() threaded dispatch with proof-carrying
// check elision on and off — then asserts the executions are
// architecturally identical (the lockstep contract) and writes
// BENCH_guest.json for the CI regression gate.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/translate.h"
#include "analysis/verifier.h"
#include "bench_util.h"
#include "isa/assembler.h"
#include "isa/cpu.h"
#include "mem/bus.h"
#include "mem/ram.h"
#include "platform/memmap.h"
#include "platform/workload.h"

namespace {

using namespace cres;

// A CPU-only machine: app RAM plus dumb RAM-backed stand-ins for the
// peripherals the control loop touches. No simulator, no device
// models — everything outside the core is constant, so wall time is
// guest execution and nothing else.
struct GuestMachine {
    mem::Bus bus;
    mem::Ram app_ram{"app_ram", platform::kAppRamSize};
    mem::Ram wdog{"wdog", 0x100};
    mem::Ram sensor{"sensor", 0x100};
    mem::Ram actuator{"actuator", 0x100};
    isa::Cpu cpu{"cpu", bus};
    std::uint64_t heartbeats = 0;

    explicit GuestMachine(const isa::Program& program, bool translate,
                          bool elide = true) {
        bus.map({"app_ram", platform::kAppRamBase, platform::kAppRamSize,
                 false, false},
                app_ram);
        bus.map({"wdog", platform::kWdogBase, 0x100, false, false}, wdog);
        bus.map({"sensor", platform::kSensorBase, 0x100, false, false},
                sensor);
        bus.map({"actuator", platform::kActuatorBase, 0x100, false, false},
                actuator);
        cpu.set_ecall_handler([this](isa::Cpu&, std::uint16_t) {
            ++heartbeats;  // All services handled; no architectural trap.
            return true;
        });
        app_ram.load(program.origin - platform::kAppRamBase, program.code);
        cpu.reset(program.origin);
        cpu.set_check_elision(elide);
        if (translate) {
            cpu.install_translation(analysis::translate_image_shared(
                program.code, program.origin, program.origin));
        }
    }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

struct Throughput {
    double mips = 0.0;
    std::uint64_t instret = 0;
};

// Runs `machine` for ~min_seconds of wall time in fixed-size chunks
// and rates retired guest instructions per second.
template <typename StepChunk>
Throughput measure(GuestMachine& machine, StepChunk&& chunk,
                   double min_seconds) {
    constexpr std::uint64_t kChunk = 1u << 18;
    // Warm-up: first chunk pays one-time costs (cache fills, branch
    // predictor training for the dispatch loop).
    chunk(machine, kChunk);

    const std::uint64_t start_instret = machine.cpu.instret();
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
        chunk(machine, kChunk);
        elapsed = seconds_since(t0);
    } while (elapsed < min_seconds && !machine.cpu.halted());

    Throughput out;
    out.instret = machine.cpu.instret() - start_instret;
    out.mips = static_cast<double>(out.instret) / elapsed / 1e6;
    return out;
}

void step_chunk(GuestMachine& machine, std::uint64_t steps) {
    for (std::uint64_t i = 0; i < steps; ++i) {
        if (!machine.cpu.step()) break;
    }
}

void run_steps_chunk(GuestMachine& machine, std::uint64_t steps) {
    (void)machine.cpu.run_steps(steps);
}

// Drives all four engines for exactly `events` step events each and
// checks the lockstep contract on the final state. The fourth engine
// runs tier-2 dispatch with proof-carrying check elision disabled, so
// a divergence here isolates the elision machinery specifically.
// Returns false (and reports) on any divergence.
bool verify_lockstep(const isa::Program& program, std::uint64_t events) {
    GuestMachine interp(program, false);
    GuestMachine tier1(program, true);
    GuestMachine tier2(program, true);
    GuestMachine noelide(program, true, false);
    for (std::uint64_t i = 0; i < events; ++i) {
        (void)interp.cpu.step();
        (void)tier1.cpu.step();
    }
    for (GuestMachine* m : {&tier2, &noelide}) {
        std::uint64_t done = 0;
        while (done < events) {
            const std::uint64_t n = m->cpu.run_steps(events - done);
            if (n == 0) break;
            done += n;
        }
    }

    bool ok = true;
    auto check = [&ok](const std::string& what, std::uint64_t a,
                       std::uint64_t b, std::uint64_t c, std::uint64_t d) {
        if (a != b || a != c || a != d) {
            std::cerr << "LOCKSTEP MISMATCH " << what << ": interp=" << a
                      << " tier1=" << b << " tier2=" << c
                      << " tier2/no-elide=" << d << "\n";
            ok = false;
        }
    };
    check("pc", interp.cpu.pc(), tier1.cpu.pc(), tier2.cpu.pc(),
          noelide.cpu.pc());
    for (unsigned r = 0; r < 16; ++r) {
        check("r" + std::to_string(r), interp.cpu.reg(r), tier1.cpu.reg(r),
              tier2.cpu.reg(r), noelide.cpu.reg(r));
    }
    for (std::uint16_t c = 0; c < isa::kCsrCount; ++c) {
        if (c == isa::kCsrMcycle) continue;  // step()/run_steps: no ticks.
        check("csr" + std::to_string(c), interp.cpu.csr(c), tier1.cpu.csr(c),
              tier2.cpu.csr(c), noelide.cpu.csr(c));
    }
    check("instret", interp.cpu.instret(), tier1.cpu.instret(),
          tier2.cpu.instret(), noelide.cpu.instret());
    check("traps", interp.cpu.trap_count(), tier1.cpu.trap_count(),
          tier2.cpu.trap_count(), noelide.cpu.trap_count());
    check("heartbeats", interp.heartbeats, tier1.heartbeats,
          tier2.heartbeats, noelide.heartbeats);
    if (ok && tier2.cpu.elided_ops() == 0) {
        std::cerr << "LOCKSTEP: elision-on engine elided no accesses — "
                     "the proof pipeline is not reaching the executor\n";
        ok = false;
    }
    return ok;
}

// Memory-bound scan: the li-then-access MMIO idiom embedded firmware
// is made of, shaped so ~2/3 of dynamic instructions are loads/stores
// whose address is materialized in the same superblock — exactly the
// accesses the abstract interpreter proves and the executor elides.
// The control loop is ALU-bound (its delay spin dwarfs its I/O), so
// this is the workload where check elision shows up in MIPS.
isa::Program mem_scan_program() {
    std::ostringstream os;
    os << "start:\n"
       << "    li   sp, " << platform::kStackTop << "\n"
       << "loop:\n"
       << "    li   r1, " << platform::kDataBase << "\n"
       << "    lw   r2, r1, 0\n"
       << "    lw   r3, r1, 4\n"
       << "    lw   r4, r1, 8\n"
       << "    lw   r5, r1, 12\n"
       << "    add  r2, r2, r3\n"
       << "    sw   r2, r1, 16\n"
       << "    sw   r3, r1, 20\n"
       << "    sw   r4, r1, 24\n"
       << "    sw   r5, r1, 28\n"
       << "    j    loop\n";
    return isa::assemble(os.str(), platform::kCodeBase);
}

}  // namespace

int main(int argc, char** argv) {
    // --quick: CI smoke mode; shorter timing windows, same assertions.
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const double window = quick ? 0.2 : 1.0;

    const isa::Program program = platform::control_loop_program();
    const auto image = analysis::translate_image_shared(
        program.code, program.origin, program.origin);

    // The proof artifact the admission gate would attach: how many of
    // the firmware's loads/stores the abstract interpreter proved
    // in-bounds + aligned (those are exactly the elidable accesses).
    const analysis::FirmwareVerifier verifier{analysis::Policy{}};
    const analysis::Report report =
        verifier.analyze(program.code, program.origin, program.origin);
    const double proven_coverage =
        report.proofs ? report.proofs->coverage() : 0.0;

    bench::section("E15 — Guest execution throughput (control_loop)");
    std::cout << "firmware: " << program.code.size() << " bytes, "
              << image->translated_words << "/" << program.code.size() / 4
              << " words translated (coverage "
              << bench::fmt_double(image->coverage() * 100, 1)
              << "%), proven-access coverage "
              << bench::fmt_double(proven_coverage * 100, 1) << "%\n\n";

    // Lockstep first: a fast wrong engine is worthless.
    const bool lockstep_ok = verify_lockstep(program, 2'000'000);

    GuestMachine interp(program, false);
    GuestMachine tier1(program, true);
    GuestMachine tier2(program, true);
    GuestMachine noelide(program, true, false);
    const Throughput t0 = measure(interp, step_chunk, window);
    const Throughput t1 = measure(tier1, step_chunk, window);
    const Throughput t2 = measure(tier2, run_steps_chunk, window);
    const Throughput tn = measure(noelide, run_steps_chunk, window);

    const double speedup_step = t1.mips / t0.mips;
    const double speedup_threaded = t2.mips / t0.mips;
    const double elided_share =
        static_cast<double>(tier2.cpu.elided_ops()) /
        static_cast<double>(tier2.cpu.instret());

    bench::Table table({"engine", "driver", "guest MIPS", "speedup",
                        "translated share"});
    table.row("tier 0: interpreter", "step()", bench::fmt_double(t0.mips, 1),
              "1.00", "0%");
    table.row(
        "tier 1: translated", "step()", bench::fmt_double(t1.mips, 1),
        bench::fmt_double(speedup_step, 2),
        bench::fmt_double(
            100.0 * static_cast<double>(tier1.cpu.translated_instret()) /
                static_cast<double>(tier1.cpu.instret()),
            1) + "%");
    table.row(
        "tier 2: no-elide", "run_steps()", bench::fmt_double(tn.mips, 1),
        bench::fmt_double(tn.mips / t0.mips, 2),
        bench::fmt_double(
            100.0 * static_cast<double>(noelide.cpu.translated_instret()) /
                static_cast<double>(noelide.cpu.instret()),
            1) + "%");
    table.row(
        "tier 2: threaded", "run_steps()", bench::fmt_double(t2.mips, 1),
        bench::fmt_double(speedup_threaded, 2),
        bench::fmt_double(
            100.0 * static_cast<double>(tier2.cpu.translated_instret()) /
                static_cast<double>(tier2.cpu.instret()),
            1) + "%");
    table.print();

    std::cout << "\ncheck elision: " << bench::fmt_double(elided_share * 100, 1)
              << "% of retired ops ran with MPU/alignment checks elided "
                 "(proof coverage "
              << bench::fmt_double(proven_coverage * 100, 1)
              << "% of static mem ops)\n";

    // The elision A/B on a memory-bound firmware, where the per-access
    // check cost is the bottleneck rather than dispatch.
    const isa::Program scan = mem_scan_program();
    const analysis::Report scan_report =
        verifier.analyze(scan.code, scan.origin, scan.origin);
    const double scan_coverage =
        scan_report.proofs ? scan_report.proofs->coverage() : 0.0;
    const bool scan_lockstep_ok = verify_lockstep(scan, 2'000'000);
    GuestMachine scan_on(scan, true);
    GuestMachine scan_off(scan, true, false);
    const Throughput ts_on = measure(scan_on, run_steps_chunk, window);
    const Throughput ts_off = measure(scan_off, run_steps_chunk, window);
    const double speedup_elide = ts_on.mips / ts_off.mips;
    const double scan_elided_share =
        static_cast<double>(scan_on.cpu.elided_ops()) /
        static_cast<double>(scan_on.cpu.instret());

    bench::section("E15b — Check elision on a memory-bound scan");
    bench::Table scan_table({"engine", "guest MIPS", "elided ops"});
    scan_table.row("tier 2, checks on", bench::fmt_double(ts_off.mips, 1),
                   "0%");
    scan_table.row("tier 2, elision", bench::fmt_double(ts_on.mips, 1),
                   bench::fmt_double(scan_elided_share * 100, 1) + "%");
    scan_table.print();
    std::cout << "\nproven-access coverage "
              << bench::fmt_double(scan_coverage * 100, 1)
              << "%, elision speedup " << bench::fmt_double(speedup_elide, 2)
              << "x, lockstep "
              << (scan_lockstep_ok ? "identical" : "DIVERGED") << "\n";

    std::cout << "\nlockstep (2M events, all regs/CSRs/counters): "
              << (lockstep_ok ? "identical" : "DIVERGED") << "\n"
              << "Expected shape: tier 1 beats the interpreter by eliding "
                 "fetch+decode; tier 2 adds threaded dispatch and the "
                 "step()-call elision for a >=10x total speedup. The "
                 "translated share tracks coverage: only the ecall "
                 "(service call) detours through the generic executor.\n";

    bench::JsonReporter json;
    json.field("bench", "guest_execution");
    json.field("workload", "control_loop_program");
    json.metric("guest_code_bytes", static_cast<double>(program.code.size()));
    json.metric("translation_coverage", image->coverage());
    json.metric("proven_access_coverage", proven_coverage);
    json.metric("interpreter_mips", t0.mips);
    json.metric("translated_step_mips", t1.mips);
    json.metric("threaded_run_steps_mips", t2.mips);
    json.metric("threaded_no_elide_mips", tn.mips);
    json.metric("speedup_translated_step", speedup_step);
    json.metric("speedup_threaded", speedup_threaded);
    json.metric("elided_ops_share", elided_share);
    json.metric("memscan_proven_access_coverage", scan_coverage);
    json.metric("memscan_no_elide_mips", ts_off.mips);
    json.metric("memscan_elide_mips", ts_on.mips);
    json.metric("memscan_elided_ops_share", scan_elided_share);
    json.metric("speedup_elide", speedup_elide);
    json.field("lockstep",
               lockstep_ok && scan_lockstep_ok ? "identical" : "diverged");

    const char* path_env = std::getenv("CRES_BENCH_JSON");
    const std::string path = path_env != nullptr ? path_env
                                                 : "BENCH_guest.json";
    if (json.write(path)) {
        std::cout << "\nwrote " << path << "\n";
    }
    return lockstep_ok && scan_lockstep_ok ? 0 : 1;
}
