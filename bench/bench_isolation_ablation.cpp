// E9 — Independence ablation (paper §V-1): the SSM "must be physically
// independent and isolated". We pit a kernel-level compromise against
// (a) the physically isolated SSM and (b) a shared-resource SSM
// (TEE-style, as in [32]) and compare survival of the security
// function, evidence, and subsequent detection capability.
#include "attack/attacks.h"
#include "bench_util.h"
#include "platform/scenario.h"

namespace {

using namespace cres;

struct Ablation {
    bool ssm_survived = false;
    bool evidence_survived = false;
    bool chain_ok = false;
    bool followup_detected = false;
    std::size_t records = 0;
};

Ablation run(bool isolated, std::uint64_t seed) {
    platform::ScenarioConfig config;
    config.node.name = isolated ? "isolated" : "shared";
    config.node.resilient = true;
    config.node.ssm_isolated = isolated;
    config.warmup = 20000;
    config.horizon = 140000;
    config.seed = seed;

    platform::Scenario scenario(config);
    // First the kernel compromise targets the SSM itself...
    attack::SsmKillAttack kill;
    // ...then a follow-up exfiltration tests whether anyone is watching.
    attack::StackSmashAttack smash;
    smash.launch(scenario.node(), 60000);
    (void)scenario.run(&kill, 30000);

    Ablation a;
    auto& node = scenario.node();
    a.ssm_survived = !node.ssm->disabled();
    a.records = node.ssm->evidence().size();
    a.evidence_survived = a.records > 0;
    a.chain_ok = node.ssm->evidence().verify_chain() && a.records > 0;
    for (const auto& d : node.ssm->dispatches()) {
        if (d.dispatched_at >= 60000) a.followup_detected = true;
    }
    return a;
}

}  // namespace

int main() {
    bench::section(
        "E9 — SSM independence ablation: kernel compromise at t=30k, "
        "follow-up exfil attack at t=60k");

    bench::Table table({"SSM placement", "security function survives",
                        "evidence survives", "chain verifies",
                        "follow-up attack detected", "evidence records"});

    const Ablation isolated = run(true, 33);
    const Ablation shared = run(false, 33);

    table.row("physically isolated (paper SSV-1)",
              bench::yesno(isolated.ssm_survived),
              bench::yesno(isolated.evidence_survived),
              bench::yesno(isolated.chain_ok),
              bench::yesno(isolated.followup_detected), isolated.records);
    table.row("shared with app CPU (TEE-style [32])",
              bench::yesno(shared.ssm_survived),
              bench::yesno(shared.evidence_survived),
              bench::yesno(shared.chain_ok),
              bench::yesno(shared.followup_detected), shared.records);
    table.print();

    std::cout << "\nExpected shape: the isolated SSM shrugs the compromise "
                 "off (and records the attempt), then catches the follow-up "
                 "attack; the shared SSM dies with the kernel, loses all "
                 "evidence, and the follow-up breach goes unseen — exactly "
                 "the paper's argument for physical independence.\n";
    return 0;
}
