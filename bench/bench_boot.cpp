// E7 — Secure boot & update: (a) boot-time verification cost vs image
// size (hashing dominates, signature verification is a fixed tail);
// (b) the anti-rollback experiment reproducing the downgrade attack of
// [16]: a validly-signed old image boots on the lax configuration and
// is rejected on the strict one; (c) A/B update walk with roll-back
// and roll-forward.
#include <chrono>

#include "bench_util.h"
#include "boot/image.h"
#include "boot/measured.h"
#include "boot/secureboot.h"
#include "boot/update.h"
#include "mem/ram.h"

namespace {

using namespace cres;

crypto::Hash256 seed(std::uint8_t fill) {
    crypto::Hash256 s;
    s.fill(fill);
    return s;
}

boot::FirmwareImage make_image(crypto::MerkleSigner& vendor,
                               const std::string& name,
                               std::uint32_t version, std::size_t size) {
    boot::FirmwareImage image;
    image.name = name;
    image.security_version = version;
    image.load_addr = 0x1000;
    image.entry_point = 0x1000;
    image.payload.resize(size);
    for (std::size_t i = 0; i < size; ++i) {
        image.payload[i] = static_cast<std::uint8_t>(i * 31 + version);
    }
    boot::ImageSigner signer(vendor);
    signer.sign(image);
    return image;
}

}  // namespace

int main() {
    bench::section("E7a — Secure-boot cost vs image size");
    {
        bench::Table table({"image size (KiB)", "verify cost (sim cycles)",
                            "host wall time (us)", "boot ok"});
        for (const std::size_t kib : {4u, 16u, 64u, 128u, 256u}) {
            crypto::MerkleSigner vendor(seed(1), 3);
            crypto::MonotonicCounterBank counters;
            boot::BootRom rom(vendor.public_key(), counters);
            mem::Ram flash("flash", 512 * 1024);
            boot::PcrBank pcrs;

            const auto image = make_image(vendor, "fw", 1, kib * 1024);
            const auto t0 = std::chrono::steady_clock::now();
            const auto report = rom.boot_chain({image}, flash, 0, pcrs);
            const auto t1 = std::chrono::steady_clock::now();
            const auto us =
                std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                    .count();
            table.row(kib, report.verification_cost_cycles, us,
                      bench::yesno(report.success));
        }
        table.print();
        std::cout << "Expected shape: cost grows linearly with image size "
                     "over a fixed signature-verification floor.\n";
    }

    bench::section(
        "E7b — Downgrade attack [16]: strict vs lax anti-rollback");
    {
        bench::Table table({"configuration", "boot v5", "then boot v3 (old)",
                            "downgrade outcome"});
        for (const bool strict : {true, false}) {
            crypto::MerkleSigner vendor(seed(2), 3);
            crypto::MonotonicCounterBank counters;
            boot::BootRom rom(vendor.public_key(), counters);
            rom.set_strict_rollback(strict);
            mem::Ram flash("flash", 512 * 1024);
            boot::PcrBank pcrs;

            const auto v5 = make_image(vendor, "fw", 5, 4096);
            const auto v3 = make_image(vendor, "fw", 3, 4096);
            const auto first = rom.boot_chain({v5}, flash, 0, pcrs);
            const auto second = rom.boot_chain({v3}, flash, 0, pcrs);
            table.row(strict ? "strict (monotonic counter)"
                             : "lax (signature only — the [16] flaw)",
                      boot::boot_status_name(first.stages[0].status),
                      boot::boot_status_name(second.stages[0].status),
                      second.success ? "ATTACK SUCCEEDS (old bugs restored)"
                                     : "attack blocked");
        }
        table.print();
    }

    bench::section("E7c — A/B update: roll-forward and roll-back");
    {
        crypto::MerkleSigner vendor(seed(3), 4);
        crypto::MonotonicCounterBank counters;
        boot::UpdateAgent agent(vendor.public_key(), counters);

        bench::Table table({"step", "active version", "provisional",
                            "rollback floor"});
        auto snapshot = [&](const std::string& step) {
            table.row(step,
                      agent.active_image()
                          ? std::to_string(
                                agent.active_image()->security_version)
                          : "-",
                      bench::yesno(agent.provisional()),
                      counters.value("fw_version"));
        };

        (void)agent.install(make_image(vendor, "fw", 1, 1024).serialize());
        (void)agent.activate();
        agent.commit();
        snapshot("install v1 + commit");

        (void)agent.install(make_image(vendor, "fw", 2, 1024).serialize());
        (void)agent.activate();
        snapshot("install v2 (provisional)");

        (void)agent.reboot_failed();
        snapshot("v2 crashes -> roll back");

        (void)agent.install(make_image(vendor, "fw", 3, 1024).serialize());
        (void)agent.activate();
        agent.commit();
        snapshot("install fixed v3 + commit (roll-forward)");

        const auto downgrade =
            agent.install(make_image(vendor, "fw", 2, 1024).serialize());
        table.row("attacker re-offers v2",
                  std::to_string(agent.active_image()->security_version),
                  bench::yesno(agent.provisional()),
                  counters.value("fw_version"));
        std::cout << "re-offered v2 install status: "
                  << boot::update_status_name(downgrade) << "\n\n";
        table.print();
    }
    return 0;
}
