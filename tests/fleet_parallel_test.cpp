// Parallel fleet execution: the determinism contract. Same fleet seed
// => bit-identical sweep verdicts, health summaries and evidence logs
// at ANY worker-thread count, because each device-node is owned by one
// worker per phase and all per-device state derives from
// seed ^ device_index. worker_threads=1 is the historical serial path.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "attack/attacks.h"
#include "attack/campaigns.h"
#include "platform/fleet.h"
#include "util/thread_pool.h"

namespace cres::platform {
namespace {

FleetConfig fleet_config(std::size_t devices, std::size_t threads,
                         std::uint64_t seed = 97) {
    FleetConfig config;
    config.device_count = devices;
    config.resilient = true;
    config.seed = seed;
    config.worker_threads = threads;
    return config;
}

// --- (a) serial vs parallel: bit-identical fleet state ---------------------

TEST(FleetParallel, SerialAndFourThreadsProduceIdenticalResults) {
    constexpr std::size_t kDevices = 64;
    constexpr sim::Cycle kCycles = 5000;

    Fleet serial(fleet_config(kDevices, 1));
    Fleet parallel(fleet_config(kDevices, 4));
    EXPECT_EQ(serial.worker_threads(), 1u);
    EXPECT_EQ(parallel.worker_threads(), 4u);

    serial.run(kCycles);
    parallel.run(kCycles);

    const SweepResult serial_sweep = serial.attestation_sweep();
    const SweepResult parallel_sweep = parallel.attestation_sweep();
    ASSERT_EQ(serial_sweep.verdicts.size(), kDevices);
    EXPECT_EQ(serial_sweep.verdicts, parallel_sweep.verdicts);
    EXPECT_EQ(serial_sweep.trusted, parallel_sweep.trusted);
    EXPECT_EQ(serial_sweep.flagged, parallel_sweep.flagged);

    const HealthSummary serial_health = serial.collect_health();
    const HealthSummary parallel_health = parallel.collect_health();
    EXPECT_EQ(serial_health.states, parallel_health.states);
    EXPECT_EQ(serial_health.report_valid, parallel_health.report_valid);
    EXPECT_EQ(serial_health.healthy, parallel_health.healthy);

    // Evidence logs are sealed per-device streams; byte-compare a
    // sample across the fleet.
    for (const std::size_t i : {std::size_t{0}, kDevices / 2,
                                kDevices - 1}) {
        ASSERT_NE(serial.device(i).ssm, nullptr);
        EXPECT_EQ(serial.device(i).ssm->evidence().serialize(),
                  parallel.device(i).ssm->evidence().serialize())
            << "device " << i;
    }

    // Service counters follow the same per-device determinism.
    EXPECT_EQ(serial.fleet_iterations(), parallel.fleet_iterations());
}

TEST(FleetParallel, WireSweepIsDeterministicAcrossThreadCounts) {
    constexpr std::size_t kDevices = 16;
    Fleet serial(fleet_config(kDevices, 1));
    Fleet parallel(fleet_config(kDevices, 4));
    serial.run(4000);
    parallel.run(4000);
    const SweepResult a = serial.attestation_sweep_wire();
    const SweepResult b = parallel.attestation_sweep_wire();
    EXPECT_EQ(a.verdicts, b.verdicts);
    EXPECT_EQ(a.trusted, kDevices);
}

// --- (b) compromise localisation is thread-count invariant -----------------

TEST(FleetParallel, CompromisedDeviceFlagsSameIndexAtEveryThreadCount) {
    constexpr std::size_t kDevices = 12;
    constexpr std::size_t kVictim = 7;

    std::vector<std::vector<std::size_t>> flagged_per_run;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{0}}) {
        Fleet fleet(fleet_config(kDevices, threads));
        fleet.run(3000);
        crypto::Hash256 implant;
        implant.fill(0x66);
        fleet.device(kVictim).pcrs.extend(boot::PcrBank::kPcrFirmware,
                                          implant);
        const SweepResult sweep = fleet.attestation_sweep();
        flagged_per_run.push_back(sweep.flagged_devices());
    }
    for (const auto& flagged : flagged_per_run) {
        EXPECT_EQ(flagged, (std::vector<std::size_t>{kVictim}));
    }
}

TEST(FleetParallel, RuntimeBreachEvidenceIsIdenticalSerialVsParallel) {
    constexpr std::size_t kDevices = 8;
    constexpr std::size_t kVictim = 3;

    auto breach = [](Fleet& fleet) {
        fleet.run(3000);
        fleet.checkpoint_all();
        attack::StackSmashAttack smash;
        smash.launch(fleet.device(kVictim),
                     fleet.device(kVictim).sim.now() + 1000);
        fleet.run(20000);
    };

    Fleet serial(fleet_config(kDevices, 1));
    Fleet parallel(fleet_config(kDevices, 4));
    breach(serial);
    breach(parallel);

    ASSERT_GT(serial.device(kVictim).ssm->evidence().size(), 1u);
    EXPECT_EQ(serial.device(kVictim).ssm->evidence().serialize(),
              parallel.device(kVictim).ssm->evidence().serialize());
    const HealthSummary a = serial.collect_health();
    const HealthSummary b = parallel.collect_health();
    EXPECT_EQ(a.states, b.states);
}

TEST(FleetParallel, MetricsSnapshotIsBitIdenticalAcrossThreadCounts) {
    constexpr std::size_t kDevices = 8;
    constexpr std::size_t kVictim = 2;

    auto run_and_snapshot = [](std::size_t threads) {
        Fleet fleet(fleet_config(kDevices, threads));
        fleet.run(3000);
        fleet.checkpoint_all();
        attack::StackSmashAttack smash;
        smash.launch(fleet.device(kVictim),
                     fleet.device(kVictim).sim.now() + 1000);
        fleet.run(20000);
        return fleet.collect_metrics();
    };

    const obs::MetricsRegistry one = run_and_snapshot(1);
    const obs::MetricsRegistry eight = run_and_snapshot(8);
    ASSERT_GT(one.size(), 0u);
    // Cycle-accurate metrics never touch wall clock, device registries
    // are thread-confined and the fold is index-ordered, so both
    // exposition formats are byte-identical at any worker count.
    EXPECT_EQ(one.prometheus(), eight.prometheus());
    EXPECT_EQ(one.json(), eight.json());
    // And an incident actually happened (the snapshot is not vacuous).
    const auto* incidents = one.find_counter("cres_csf_incidents_total");
    ASSERT_NE(incidents, nullptr);
    EXPECT_GT(incidents->value(), 0u);
}

TEST(FleetParallel, ChromeTraceAndPostmortemsAreBitIdenticalAcrossThreads) {
    constexpr std::size_t kDevices = 8;
    constexpr std::size_t kVictim = 2;

    auto run_fleet = [](std::size_t threads) {
        auto fleet =
            std::make_unique<Fleet>(fleet_config(kDevices, threads));
        fleet->run(3000);
        fleet->checkpoint_all();
        attack::StackSmashAttack smash;
        smash.launch(fleet->device(kVictim),
                     fleet->device(kVictim).sim.now() + 1000);
        fleet->run(20000);
        return fleet;
    };

    const auto one = run_fleet(1);
    const auto eight = run_fleet(8);

    // The fleet trace is an index-ordered reduction over per-device
    // recorders fed only by simulated cycles, so the JSON is
    // byte-identical at any worker count.
    const std::string trace = one->chrome_trace();
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace, eight->chrome_trace());
    // Every device got a process track.
    for (std::size_t i = 0; i < kDevices; ++i) {
        EXPECT_NE(trace.find("device-" + std::to_string(i)),
                  std::string::npos)
            << i;
    }

    // Sealed postmortems (HMAC tags included) match byte for byte.
    const auto pm_one = one->sealed_postmortems();
    const auto pm_eight = eight->sealed_postmortems();
    ASSERT_FALSE(pm_one.empty());  // The breach closed an incident.
    EXPECT_EQ(pm_one, pm_eight);
}

// --- (c) quiescence fast-forward: differential determinism ------------------
// The scheduler contract (docs/SCHEDULER.md): fast-forwarding over
// provably idle cycles is a speed knob, never a semantics knob. The
// same scenario per-cycle, quiescence-skipped, and quiescence-skipped
// on 8 workers must produce byte-identical artefacts.

FleetConfig estate_config(std::size_t devices, std::size_t threads,
                          bool quiescence, bool interrupt_workload,
                          std::uint64_t seed = 98) {
    FleetConfig config;
    config.device_count = devices;
    config.resilient = true;
    config.seed = seed;
    config.worker_threads = threads;
    config.quiescence = quiescence;
    config.interrupt_workload = interrupt_workload;
    return config;
}

/// Per-device architectural counters, index-ordered: retired
/// instructions, cycle CSRs, service iterations, sensor samples.
std::vector<std::uint64_t> device_counters(Fleet& fleet) {
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        Node& node = fleet.device(i);
        out.push_back(node.sim.now());
        out.push_back(node.cpu.csr(isa::kCsrMcycle));
        out.push_back(node.cpu.csr(isa::kCsrMinstret));
        out.push_back(node.stats().control_iterations);
        out.push_back(node.sensor.samples());
    }
    return out;
}

TEST(FleetQuiescence, InterruptEstateFastForwardMatchesPerCycle) {
    constexpr std::size_t kDevices = 12;
    constexpr sim::Cycle kCycles = 30000;

    Fleet percycle(estate_config(kDevices, 1, false, true));
    Fleet skipped(estate_config(kDevices, 1, true, true));
    percycle.run(kCycles);
    skipped.run(kCycles);

    // The WFI estate actually fast-forwarded (the test is not vacuous).
    EXPECT_EQ(percycle.fleet_cycles_skipped(), 0u);
    EXPECT_GT(skipped.fleet_cycles_skipped(), 0u);

    EXPECT_EQ(device_counters(percycle), device_counters(skipped));
    EXPECT_EQ(percycle.fleet_iterations(), skipped.fleet_iterations());

    const SweepResult sweep_a = percycle.attestation_sweep();
    const SweepResult sweep_b = skipped.attestation_sweep();
    EXPECT_EQ(sweep_a.verdicts, sweep_b.verdicts);

    const HealthSummary health_a = percycle.collect_health();
    const HealthSummary health_b = skipped.collect_health();
    EXPECT_EQ(health_a.states, health_b.states);
    EXPECT_EQ(health_a.report_valid, health_b.report_valid);

    // Metrics snapshots — poll counters, gap histograms, queue-depth
    // series included — are byte-identical: skip() replays every
    // elided observation effect exactly.
    EXPECT_EQ(percycle.collect_metrics().prometheus(),
              skipped.collect_metrics().prometheus());
    EXPECT_EQ(percycle.collect_metrics().json(),
              skipped.collect_metrics().json());
    EXPECT_EQ(percycle.chrome_trace(), skipped.chrome_trace());

    for (const std::size_t i :
         {std::size_t{0}, kDevices / 2, kDevices - 1}) {
        EXPECT_EQ(percycle.device(i).ssm->evidence().serialize(),
                  skipped.device(i).ssm->evidence().serialize())
            << "device " << i;
    }
}

TEST(FleetQuiescence, BusyEstateFastForwardIsExactToo) {
    // The busy-wait workload keeps cores active, so there is little to
    // skip — but whatever is skipped must still be exact.
    constexpr std::size_t kDevices = 8;
    Fleet percycle(estate_config(kDevices, 1, false, false));
    Fleet skipped(estate_config(kDevices, 1, true, false));
    percycle.run(15000);
    skipped.run(15000);

    EXPECT_EQ(device_counters(percycle), device_counters(skipped));
    EXPECT_EQ(percycle.collect_metrics().prometheus(),
              skipped.collect_metrics().prometheus());
    EXPECT_EQ(percycle.chrome_trace(), skipped.chrome_trace());
}

TEST(FleetQuiescence, EightWorkerSkippedRunMatchesSerialPerCycle) {
    constexpr std::size_t kDevices = 16;
    constexpr sim::Cycle kCycles = 25000;

    Fleet reference(estate_config(kDevices, 1, false, true));
    Fleet fast(estate_config(kDevices, 8, true, true));
    reference.run(kCycles);
    fast.run(kCycles);

    EXPECT_GT(fast.fleet_cycles_skipped(), 0u);
    EXPECT_EQ(device_counters(reference), device_counters(fast));
    EXPECT_EQ(reference.attestation_sweep().verdicts,
              fast.attestation_sweep().verdicts);
    EXPECT_EQ(reference.collect_metrics().prometheus(),
              fast.collect_metrics().prometheus());
    EXPECT_EQ(reference.chrome_trace(), fast.chrome_trace());
    for (const std::size_t i :
         {std::size_t{0}, kDevices / 2, kDevices - 1}) {
        EXPECT_EQ(reference.device(i).ssm->evidence().serialize(),
                  fast.device(i).ssm->evidence().serialize())
            << "device " << i;
    }
}

TEST(FleetQuiescence, BreachUnderFastForwardYieldsIdenticalForensics) {
    constexpr std::size_t kDevices = 8;
    constexpr std::size_t kVictim = 5;

    auto breach = [](Fleet& fleet) {
        fleet.run(3000);
        fleet.checkpoint_all();
        attack::StackSmashAttack smash;
        smash.launch(fleet.device(kVictim),
                     fleet.device(kVictim).sim.now() + 1000);
        fleet.run(20000);
    };

    Fleet percycle(estate_config(kDevices, 1, false, false));
    Fleet skipped(estate_config(kDevices, 1, true, false));
    breach(percycle);
    breach(skipped);

    ASSERT_GT(percycle.device(kVictim).ssm->evidence().size(), 1u);
    EXPECT_EQ(percycle.device(kVictim).ssm->evidence().serialize(),
              skipped.device(kVictim).ssm->evidence().serialize());
    EXPECT_EQ(percycle.sealed_postmortems(), skipped.sealed_postmortems());
    const HealthSummary a = percycle.collect_health();
    const HealthSummary b = skipped.collect_health();
    EXPECT_EQ(a.states, b.states);
}

// --- (d) fleet-shared firmware bytes ----------------------------------------

TEST(FleetFirmware, SharedFirmwareIsDeduplicatedAndBitExact) {
    constexpr std::size_t kDevices = 16;

    FleetConfig shared_cfg = estate_config(kDevices, 1, true, false);
    FleetConfig private_cfg = shared_cfg;
    private_cfg.share_firmware = false;

    Fleet shared(shared_cfg);
    Fleet priv(private_cfg);
    shared.run(8000);
    priv.run(8000);

    // One store entry serves the whole estate.
    EXPECT_EQ(shared.firmware_store().size(), 1u);
    EXPECT_EQ(shared.firmware_store().misses(), 1u);
    EXPECT_EQ(shared.firmware_store().hits(), kDevices - 1);
    EXPECT_EQ(priv.firmware_store().size(), 0u);

    // Sharing strictly shrinks private residency (the code pages), and
    // changes nothing observable.
    EXPECT_LT(shared.fleet_resident_ram_bytes(),
              priv.fleet_resident_ram_bytes());
    EXPECT_EQ(device_counters(shared), device_counters(priv));
    EXPECT_EQ(shared.attestation_sweep().verdicts,
              priv.attestation_sweep().verdicts);
    EXPECT_EQ(shared.collect_metrics().prometheus(),
              priv.collect_metrics().prometheus());
}

// --- (e) SIEM export & campaign determinism ---------------------------------
// The export stream is a serial device-index-ordered reduction and the
// correlation engine consumes it record by record, so the JSONL bytes,
// the syslog bytes, the chain head and every campaign verdict must be
// bit-identical at any worker count and under quiescence fast-forward
// — including with a mid-campaign single-device breach in the mix.

struct SiemArtifacts {
    std::string jsonl;
    std::string syslog;
    std::string head;
    std::string chrome;      ///< Fleet Chrome trace incl. flow events.
    std::string provenance;  ///< Reconstructed infection DAG (JSON).
    std::vector<std::string> campaign_postmortems;
    std::vector<std::pair<CampaignKind, std::uint64_t>> verdicts;
};

SiemArtifacts run_campaign_estate(std::size_t threads, bool quiescence,
                                  bool breach) {
    constexpr std::size_t kDevices = 24;
    // The breach variant uses the busy-wait workload: the stack-smash
    // attack targets its saved-lr slot (the WFI estate has no
    // smashable call frame). The clean variants use the WFI estate so
    // quiescence fast-forward actually elides cycles.
    Fleet fleet(estate_config(kDevices, threads, quiescence,
                              /*interrupt_workload=*/!breach, 99));

    // All three campaign classes, scheduled up front (their steps live
    // on per-device simulators, so launching is worker-count neutral).
    attack::WormCampaign worm;
    attack::CoordinatedReplayCampaign replay;
    attack::StaggeredDowngradeCampaign downgrade;
    worm.launch(fleet);
    replay.launch(fleet);
    downgrade.launch(fleet);

    attack::StackSmashAttack smash;  // Outlives its scheduled events.
    fleet.run(3000);
    fleet.checkpoint_all();
    if (breach) {
        smash.launch(fleet.device(5), fleet.device(5).sim.now() + 1000);
    }
    fleet.run(27000);
    fleet.drain_siem();  // Mid-campaign drain: replay wave still pending.
    fleet.run(30000);
    fleet.drain_siem();

    SiemArtifacts out;
    out.jsonl = fleet.siem_stream().jsonl();
    out.syslog = fleet.siem_stream().syslog();
    out.head = fleet.siem_stream().head_hex();
    out.chrome = fleet.chrome_trace();
    out.provenance = fleet.campaign_monitor().provenance_json();
    out.campaign_postmortems = fleet.sealed_campaign_postmortems();
    for (const CampaignIncident& c : fleet.campaign_monitor().campaigns()) {
        out.verdicts.emplace_back(c.kind, c.detected_at);
    }
    return out;
}

TEST(FleetSiem, ExportAndVerdictsBitIdenticalAcrossThreadCounts) {
    const SiemArtifacts one = run_campaign_estate(1, true, false);
    const SiemArtifacts eight = run_campaign_estate(8, true, false);

    // Non-vacuous: every campaign class was actually detected, the
    // export carries propagated traces, and the Chrome trace carries
    // flow events.
    ASSERT_EQ(one.verdicts.size(), 3u);
    ASSERT_NE(one.jsonl.find("\"trace\":{"), std::string::npos);
    ASSERT_NE(one.chrome.find("\"ph\":\"s\""), std::string::npos);
    ASSERT_NE(one.chrome.find("\"ph\":\"t\""), std::string::npos);
    ASSERT_NE(one.provenance.find("\"exact\": true"), std::string::npos);
    EXPECT_EQ(one.jsonl, eight.jsonl);
    EXPECT_EQ(one.syslog, eight.syslog);
    EXPECT_EQ(one.head, eight.head);
    EXPECT_EQ(one.chrome, eight.chrome);
    EXPECT_EQ(one.provenance, eight.provenance);
    EXPECT_EQ(one.verdicts, eight.verdicts);
    EXPECT_EQ(one.campaign_postmortems, eight.campaign_postmortems);
}

TEST(FleetSiem, QuiescenceFastForwardLeavesExportByteIdentical) {
    const SiemArtifacts percycle = run_campaign_estate(1, false, false);
    const SiemArtifacts skipped = run_campaign_estate(1, true, false);
    ASSERT_EQ(percycle.verdicts.size(), 3u);
    EXPECT_EQ(percycle.jsonl, skipped.jsonl);
    EXPECT_EQ(percycle.syslog, skipped.syslog);
    EXPECT_EQ(percycle.head, skipped.head);
    EXPECT_EQ(percycle.chrome, skipped.chrome);
    EXPECT_EQ(percycle.provenance, skipped.provenance);
    EXPECT_EQ(percycle.verdicts, skipped.verdicts);
    EXPECT_EQ(percycle.campaign_postmortems, skipped.campaign_postmortems);
}

TEST(FleetSiem, MidCampaignBreachStaysDeterministic) {
    // A single-device incident (stack smash on device 5) interleaved
    // with all three fleet campaigns: the stream now carries incident
    // spans AND campaign records, and must still be byte-stable across
    // worker counts and fast-forward.
    const SiemArtifacts reference = run_campaign_estate(1, false, true);
    const SiemArtifacts fast = run_campaign_estate(8, true, true);
    ASSERT_EQ(reference.verdicts.size(), 3u);
    EXPECT_NE(reference.jsonl.find("incident-open"), std::string::npos);
    EXPECT_EQ(reference.jsonl, fast.jsonl);
    EXPECT_EQ(reference.syslog, fast.syslog);
    EXPECT_EQ(reference.head, fast.head);
    EXPECT_EQ(reference.chrome, fast.chrome);
    EXPECT_EQ(reference.provenance, fast.provenance);
    EXPECT_EQ(reference.verdicts, fast.verdicts);
    EXPECT_EQ(reference.campaign_postmortems, fast.campaign_postmortems);
}

// --- (f) worker_threads resolution -----------------------------------------

TEST(FleetParallel, ZeroWorkerThreadsResolvesToHardwareConcurrency) {
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t expected = hw == 0 ? 1 : hw;
    EXPECT_EQ(ThreadPool::resolve_thread_count(0), expected);

    Fleet fleet(fleet_config(2, 0));
    EXPECT_EQ(fleet.worker_threads(), expected);
}

// --- ThreadPool primitive ---------------------------------------------------

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kCount; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << i;
    }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossPhases) {
    ThreadPool pool(3);
    std::vector<std::atomic<std::uint64_t>> slot(64);
    for (int phase = 0; phase < 10; ++phase) {
        pool.parallel_for(slot.size(), [&](std::size_t i) {
            slot[i].fetch_add(i, std::memory_order_relaxed);
        });
    }
    std::uint64_t total = 0;
    for (const auto& s : slot) total += s.load();
    EXPECT_EQ(total, 10u * (63u * 64u / 2u));
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.thread_count(), 1u);
    std::vector<std::size_t> order;
    pool.parallel_for(16, [&](std::size_t i) { order.push_back(i); });
    std::vector<std::size_t> expected(16);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);  // Inline serial loop: strict order.
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
    ThreadPool pool(2);
    bool ran = false;
    pool.parallel_for(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
    ThreadPool pool(4);
    EXPECT_THROW(
        pool.parallel_for(100,
                          [](std::size_t i) {
                              if (i == 37) {
                                  throw std::runtime_error("device 37");
                              }
                          }),
        std::runtime_error);
    // The pool survives a throwing sweep and stays usable.
    std::atomic<std::size_t> ok{0};
    pool.parallel_for(50, [&](std::size_t) {
        ok.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ok.load(), 50u);
}

}  // namespace
}  // namespace cres::platform
