// Static firmware verifier: CFG construction, policy passes, and the
// secure-boot/update admission gate (unit + end-to-end).
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/absint.h"
#include "analysis/verifier.h"
#include "boot/image.h"
#include "boot/secureboot.h"
#include "boot/update.h"
#include "isa/assembler.h"
#include "platform/node.h"
#include "platform/workload.h"

namespace cres::analysis {
namespace {

using platform::kCodeBase;
using platform::kDataBase;
using platform::kStackTop;

isa::Program asm_at_code_base(const std::string& source) {
    return isa::assemble(source, kCodeBase);
}

Report analyze_program(const isa::Program& program,
                       const Policy& policy = {}) {
    const FirmwareVerifier verifier(policy);
    return verifier.analyze(program.code, program.origin,
                            program.symbol("start"));
}

bool has_code(const Report& report, std::string_view code) {
    for (const auto& f : report.findings) {
        if (f.code == code) return true;
    }
    return false;
}

// --- CFG construction -------------------------------------------------

TEST(Cfg, SplitsBlocksAndResolvesMaterializedTargets) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        li   r1, 5
    loop:
        addi r1, r1, -1
        bne  r1, r0, loop
        li   r2, 0x20000
        sw   r1, r2, 8
        halt
    )");
    const Cfg cfg = build_cfg(p.code, p.origin, p.symbol("start"));

    EXPECT_GE(cfg.blocks.size(), 3u);
    EXPECT_EQ(cfg.reachable_count(), cfg.words.size());
    // The bne is a resolved branch with two successors.
    bool saw_branch = false;
    for (const JumpSite& j : cfg.jumps) {
        if (j.kind == JumpKind::kBranch) {
            saw_branch = true;
            EXPECT_TRUE(j.resolved);
            EXPECT_EQ(j.target, p.symbol("loop"));
        }
    }
    EXPECT_TRUE(saw_branch);
    // The materialized store address resolved statically.
    ASSERT_EQ(cfg.accesses.size(), 1u);
    EXPECT_EQ(cfg.accesses[0].target, 0x20008u);
    EXPECT_TRUE(cfg.accesses[0].is_store);
}

TEST(Cfg, TrapVectorWritesBecomeRoots) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        la   r1, handler
        csrw mtvec, r1
        halt
    handler:
        mret
    )");
    const Cfg cfg = build_cfg(p.code, p.origin, p.symbol("start"));
    // The handler is only referenced through the csr write, yet it is
    // explored: a vector jump site plus a second root.
    EXPECT_EQ(cfg.roots.size(), 2u);
    EXPECT_EQ(cfg.reachable_count(), cfg.words.size());
    bool saw_vector = false;
    for (const JumpSite& j : cfg.jumps) {
        if (j.kind == JumpKind::kVector) {
            saw_vector = true;
            EXPECT_EQ(j.target, p.symbol("handler"));
        }
    }
    EXPECT_TRUE(saw_vector);
}

TEST(Cfg, CallLinksFallThroughAndReturnIsTerminal) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        call fn
        halt
    fn:
        ret
    )");
    const Cfg cfg = build_cfg(p.code, p.origin, p.symbol("start"));
    const auto fn = cfg.blocks.find(p.symbol("fn"));
    ASSERT_NE(fn, cfg.blocks.end());
    EXPECT_TRUE(fn->second.terminal);
    EXPECT_EQ(cfg.reachable_count(), cfg.words.size());
}

// --- policy passes ----------------------------------------------------

TEST(Verifier, SeedWorkloadsAreAdmissible) {
    for (const isa::Program& p :
         {platform::control_loop_program(),
          platform::interrupt_control_loop_program(),
          platform::checksum_program(16)}) {
        const Report report = analyze_program(p);
        EXPECT_EQ(report.errors(), 0u) << report.render();
        EXPECT_EQ(report.warnings(), 0u) << report.render();
        EXPECT_TRUE(report.stack_bounded);
        EXPECT_TRUE(report.admissible());
    }
}

TEST(Verifier, FlagsStoreToReachableCodeAsWxViolation) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        la   r1, start
        sw   r0, r1, 0
        halt
    )");
    const Report report = analyze_program(p);
    EXPECT_TRUE(has_code(report, "wx-violation")) << report.render();
    EXPECT_FALSE(report.admissible());
}

TEST(Verifier, AllowsDataInTextStoresAsInfo) {
    // Unreachable in-image words written at runtime (counters embedded
    // in the text section) are informational, not W^X errors.
    const isa::Program p = asm_at_code_base(R"(
    start:
        la   r1, counter
        sw   r0, r1, 0
        halt
    counter:
        .word 0
    )");
    const Report report = analyze_program(p);
    EXPECT_FALSE(has_code(report, "wx-violation")) << report.render();
    EXPECT_TRUE(has_code(report, "data-in-text-store"));
    EXPECT_TRUE(report.admissible()) << report.render();
}

TEST(Verifier, FlagsExecFromDataViaResolvedIndirectJump) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   r1, 0x20000
        jalr r0, r1, 0
        halt
    )");
    const Report report = analyze_program(p);
    EXPECT_TRUE(has_code(report, "exec-from-data")) << report.render();
    EXPECT_FALSE(report.admissible());
}

TEST(Verifier, FlagsJumpOutsideImageInCodeSegmentAsWarning) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   r1, 0x18000
        jalr r0, r1, 0
        halt
    )");
    const Report report = analyze_program(p);
    EXPECT_TRUE(has_code(report, "jump-outside-image")) << report.render();
    EXPECT_TRUE(report.admissible());
    EXPECT_FALSE(report.admissible(/*warnings_as_errors=*/true));
}

TEST(Verifier, FlagsIllegalOpcodeOnReachablePath) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        nop
        .word 0xff000001
        halt
    )");
    const Report report = analyze_program(p);
    EXPECT_TRUE(has_code(report, "illegal-opcode")) << report.render();
    EXPECT_FALSE(report.admissible());
}

TEST(Verifier, UnreachableGarbageIsInformationalOnly) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        halt
    blob:
        .word 0xff000001
        .word 0xdeadbeef
    )");
    const Report report = analyze_program(p);
    EXPECT_FALSE(has_code(report, "illegal-opcode")) << report.render();
    EXPECT_TRUE(has_code(report, "unreachable-code"));
    EXPECT_TRUE(report.admissible());
}

TEST(Verifier, FlagsEntryProblems) {
    const isa::Program p = asm_at_code_base("start:\n halt\n");
    const FirmwareVerifier verifier;

    Report report = verifier.analyze(p.code, p.origin, p.origin + 0x1000);
    EXPECT_TRUE(has_code(report, "entry-out-of-image"));
    EXPECT_FALSE(report.admissible());

    report = verifier.analyze(p.code, p.origin, p.origin + 2);
    EXPECT_TRUE(has_code(report, "entry-misaligned"));

    report = verifier.analyze(BytesView{}, p.origin, p.origin);
    EXPECT_TRUE(has_code(report, "empty-image"));
}

TEST(Verifier, ReportsTruncatedTailBytes) {
    isa::Program p = asm_at_code_base("start:\n nop\n halt\n");
    p.code.push_back(0xab);  // 9 bytes: one dangling.
    const Report report = analyze_program(p);
    EXPECT_EQ(report.tail_bytes, 1u);
    EXPECT_TRUE(has_code(report, "tail-bytes"));
    EXPECT_TRUE(report.admissible());
}

TEST(Verifier, ComputesWorstCaseStackDepthAcrossCalls) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        addi sp, sp, -16
        call fn
        addi sp, sp, 16
        halt
    fn:
        addi sp, sp, -24
        addi sp, sp, 24
        ret
    )");
    const Report report = analyze_program(p);
    EXPECT_EQ(report.max_stack_bytes, 40u) << report.render();
    EXPECT_TRUE(report.stack_bounded);
    EXPECT_TRUE(report.admissible());
}

TEST(Verifier, EnforcesStackBudget) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        addi sp, sp, -64
        halt
    )");
    Policy policy;
    policy.max_stack_bytes = 32;
    const Report report = analyze_program(p, policy);
    EXPECT_TRUE(has_code(report, "stack-depth-exceeded")) << report.render();
    EXPECT_FALSE(report.admissible());
}

TEST(Verifier, FlagsRecursionAsUnboundedStack) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        call fn
        halt
    fn:
        addi sp, sp, -8
        call fn
        addi sp, sp, 8
        ret
    )");
    const Report report = analyze_program(p);
    EXPECT_FALSE(report.stack_bounded);
    EXPECT_TRUE(has_code(report, "stack-unbounded")) << report.render();
}

TEST(Verifier, UnprivilegedPolicyBansSystemOpcodes) {
    const isa::Program p = platform::control_loop_program();
    const Report deflt = analyze_program(p);
    EXPECT_FALSE(has_code(deflt, "banned-opcode"));

    const Report restricted = analyze_program(p, Policy::unprivileged());
    EXPECT_TRUE(has_code(restricted, "banned-opcode"))
        << restricted.render();
    EXPECT_FALSE(restricted.admissible());
}

TEST(Verifier, RendersFindingsWithSeverityAndAddress) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        la   r1, start
        sw   r0, r1, 0
        halt
    )");
    const Report report = analyze_program(p);
    const std::string text = report.render();
    EXPECT_NE(text.find("[error]"), std::string::npos) << text;
    EXPECT_NE(text.find("wx-violation"), std::string::npos) << text;
    EXPECT_NE(text.find("0x"), std::string::npos) << text;
    EXPECT_NE(report.summary().find("error"), std::string::npos);
}

// --- cross-block constant propagation ----------------------------------

TEST(Cfg, ConstantsFlowAcrossBlockBoundaries) {
    // An implant that splits its pointer materialization across a basic
    // block boundary: the lui lands in one block, the ori + dispatch in
    // the next (the label is a branch target, so it starts a block).
    // Block-local propagation loses r1 at the boundary and the jalr
    // stays unresolved; flow-through propagation resolves it into the
    // data segment and the exec-from-data pass fires.
    const isa::Program branch_split = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        li   r2, 1
        lui  r1, 2
        bne  r2, r0, mid
    mid:
        ori  r1, r1, 0
        jalr r0, r1, 0
        halt
    )");
    const Report branch_report = analyze_program(branch_split);
    EXPECT_TRUE(has_code(branch_report, "exec-from-data"))
        << branch_report.render();
    EXPECT_FALSE(branch_report.admissible());

    // Same implant split across an unconditional jump edge.
    const isa::Program jump_split = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        lui  r1, 2
        j    fin
    fin:
        ori  r1, r1, 0
        jalr r0, r1, 0
        halt
    )");
    const Report jump_report = analyze_program(jump_split);
    EXPECT_TRUE(has_code(jump_report, "exec-from-data"))
        << jump_report.render();
    EXPECT_FALSE(jump_report.admissible());
}

// --- abstract interpretation -------------------------------------------

TEST(AbsInt, WideningTerminatesOnUnboundedCountingLoop) {
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        li   r1, 0
    loop:
        addi r1, r1, 1
        j    loop
    )");
    const Cfg cfg = build_cfg(p.code, p.origin, p.symbol("start"));
    const AbsIntResult result =
        analyze_image(cfg, SegmentMap::soc_default());
    EXPECT_TRUE(result.converged);
    EXPECT_LT(result.iterations, 1000u);
}

TEST(AbsInt, CountedLoopTightensStackBound) {
    // Eight fixed-size pushes with no matching pops: per-iteration
    // accounting calls this unbounded; the trip-count inference proves
    // the loop runs exactly 8 times and certifies 8 * 4 bytes.
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        li   r7, 8
    loop:
        addi sp, sp, -4
        sw   r0, sp, 0
        addi r7, r7, -1
        bne  r7, r0, loop
        halt
    )");
    const Report report = analyze_program(p);
    EXPECT_TRUE(report.stack_bounded) << report.render();
    EXPECT_TRUE(has_code(report, "stack-bound-tightened"))
        << report.render();
    // 8 pushes x 4 bytes = 32 concrete; the certificate over-counts by
    // at most one iteration (entry ceiling + in-block peak).
    EXPECT_GE(report.max_stack_bytes, 32u) << report.render();
    EXPECT_LE(report.max_stack_bytes, 36u) << report.render();
    EXPECT_TRUE(report.admissible());
}

TEST(AbsInt, ComputedReturnBlocksStackBoundTightening) {
    // Same counted loop as above, but the image also reaches an mret:
    // its continuation (mepc) is arbitrary computed control flow, so
    // runtime can re-enter the loop header with a counter the static
    // entries never saw. The inferred trip bound must not override
    // the syntactic unbounded warning, and every certificate the mret
    // block poisons must refuse to claim a bound.
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        li   r7, 8
    loop:
        addi sp, sp, -4
        sw   r0, sp, 0
        addi r7, r7, -1
        bne  r7, r0, loop
        mret
    )");
    const Report report = analyze_program(p);
    EXPECT_FALSE(has_code(report, "stack-bound-tightened"))
        << report.render();
    EXPECT_FALSE(report.stack_bounded) << report.render();
    EXPECT_TRUE(has_code(report, "stack-unbounded")) << report.render();
    ASSERT_NE(report.proofs, nullptr);
    ASSERT_FALSE(report.proofs->certificates.empty());
    for (const auto& cert : report.proofs->certificates) {
        EXPECT_FALSE(cert.bounded)
            << "certificate through an mret claimed a bound";
    }
}

TEST(AbsInt, ProofWalkCoversBlocksTheFixpointNeverReached) {
    // The branch below is one-sided under the interval domain, so the
    // fixpoint never visits the fall-through block — but the block is
    // still in the CFG, the translator still marks its entry (and the
    // entry of the `mid` block it jumps to) kBlockStart, and the CPU
    // re-arms elision there after computed control flow. The load at
    // `mid` is provable only under `good`'s prefix (the r1
    // materialization), not from `mid`'s own entry, so its safe bit
    // must stay clear.
    std::ostringstream os;
    os << "start:\n"
       << "    li   r2, 1\n"
       << "    bne  r2, r0, good\n"
       << "    j    mid\n"
       << "good:\n"
       << "    li   r1, " << kDataBase << "\n"
       << "mid:\n"
       << "    lw   r3, r1, 0\n"
       << "    halt\n";
    const isa::Program p = isa::assemble(os.str(), kCodeBase);
    const Cfg cfg = build_cfg(p.code, p.origin, p.symbol("start"));
    ASSERT_NE(cfg.blocks.count(p.symbol("mid")), 0u);
    const AbsIntResult result =
        analyze_image(cfg, SegmentMap::soc_default());
    EXPECT_TRUE(result.converged);
    EXPECT_EQ(result.proofs.safe[cfg.index_of(p.symbol("mid"))], 0u)
        << "safe bit proven only under an overlapping block's prefix";
}

TEST(AbsInt, SeedWorkloadsCarryProofAnnotations) {
    const Report report = analyze_program(platform::control_loop_program());
    ASSERT_NE(report.proofs, nullptr);
    EXPECT_GT(report.proofs->mem_ops, 0u);
    EXPECT_GT(report.proofs->proven_ops, 0u);
    EXPECT_GT(report.proofs->coverage(), 0.0);
    EXPECT_FALSE(report.proofs->certificates.empty());
    EXPECT_TRUE(has_code(report, "bounds-proven")) << report.render();
}

TEST(AbsInt, RejectsProvablyOutOfBoundsStoreNamingThePc) {
    // 0x1000 is below app RAM: in no segment and outside the image.
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        li   r1, 0x1000
    sink:
        sw   r0, r1, 0
        halt
    )");
    const Report report = analyze_program(p);
    EXPECT_FALSE(report.admissible()) << report.render();
    bool named = false;
    for (const auto& f : report.findings) {
        if (f.code == "oob-store") {
            named = true;
            EXPECT_EQ(f.addr, p.symbol("sink"));
        }
    }
    EXPECT_TRUE(named) << report.render();
}

// --- taint KATs: every source x sink pair ------------------------------

struct TaintSource {
    const char* segment;
    const char* source_name;
    mem::Addr base;
};

struct TaintSink {
    const char* code;
    const char* asm_line;
};

TEST(Taint, EverySourceSinkPairIsRejectedAtTheSinkPc) {
    const TaintSource sources[] = {
        {"nic", "nic-rx", platform::kNicBase},
        {"dma", "dma-desc", platform::kDmaBase},
        {"sensor", "sensor-mmio", platform::kSensorBase},
    };
    const TaintSink sinks[] = {
        {"taint-indirect-jump", "jalr r0, r2, 0"},
        {"taint-store-address", "sw   r0, r2, 0"},
        {"taint-csr-write", "csrw mtvec, r2"},
    };
    for (const TaintSource& src : sources) {
        for (const TaintSink& sink : sinks) {
            std::ostringstream os;
            os << "start:\n"
               << "    li   sp, " << kStackTop << "\n"
               << "    li   r1, " << src.base << "\n"
               << "    lw   r2, r1, 0\n"
               << "sink:\n"
               << "    " << sink.asm_line << "\n"
               << "    halt\n";
            const isa::Program p = asm_at_code_base(os.str());
            const Report report = analyze_program(p);
            SCOPED_TRACE(std::string(src.segment) + " -> " + sink.code);
            EXPECT_FALSE(report.admissible()) << report.render();
            bool named = false;
            for (const auto& f : report.findings) {
                if (f.code == sink.code) {
                    named = true;
                    EXPECT_EQ(f.addr, p.symbol("sink")) << report.render();
                }
            }
            EXPECT_TRUE(named) << report.render();
            bool traced = false;
            for (const auto& t : report.taint_traces) {
                if (t.sink_pc == p.symbol("sink") &&
                    t.source == src.source_name) {
                    traced = true;
                }
            }
            EXPECT_TRUE(traced) << report.render();
        }
    }
}

TEST(Taint, SensorDataToActuatorStoreStaysAdmissible) {
    // Tainted *data* through an untainted constant address is the
    // control loop's whole job — only tainted addresses/targets sink.
    std::ostringstream os;
    os << "start:\n"
       << "    li   sp, " << kStackTop << "\n"
       << "    li   r1, " << platform::kSensorBase << "\n"
       << "    lw   r2, r1, 0\n"
       << "    li   r3, " << platform::kActuatorBase << "\n"
       << "    sw   r2, r3, 0\n"
       << "    halt\n";
    const Report report = analyze_program(asm_at_code_base(os.str()));
    EXPECT_EQ(report.errors(), 0u) << report.render();
    EXPECT_TRUE(report.admissible());
    for (const auto& f : report.findings) {
        EXPECT_NE(f.code.substr(0, 6), "taint-") << report.render();
    }
}

// --- admission gate ---------------------------------------------------

crypto::MerkleSigner test_vendor(std::uint8_t fill) {
    crypto::Hash256 seed{};
    seed.fill(fill);
    return crypto::MerkleSigner(seed, 3);
}

boot::FirmwareImage signed_image(crypto::MerkleSigner& vendor,
                                 const isa::Program& program,
                                 const std::string& name,
                                 std::uint32_t version = 1) {
    boot::FirmwareImage image;
    image.name = name;
    image.security_version = version;
    image.load_addr = program.origin;
    image.entry_point = program.symbol("start");
    image.payload = program.code;
    boot::ImageSigner signer(vendor);
    signer.sign(image);
    return image;
}

isa::Program wx_implant_program() {
    return asm_at_code_base(R"(
    start:
        la   r1, start
        sw   r0, r1, 0
        halt
    )");
}

TEST(AnalysisGate, DenyRejectsWarnOnlyReports) {
    auto vendor = test_vendor(21);
    const boot::FirmwareImage bad =
        signed_image(vendor, wx_implant_program(), "implant");

    AnalysisGate deny(Policy{}, boot::AdmissionMode::kDeny);
    bool observed_reject = false;
    deny.set_observer([&](const boot::FirmwareImage&, const Report& report,
                          bool rejected) {
        observed_reject = rejected;
        EXPECT_GT(report.errors(), 0u);
    });
    const boot::AdmissionVerdict denied = deny.admit(bad);
    EXPECT_FALSE(denied.allow);
    EXPECT_GT(denied.errors, 0u);
    EXPECT_FALSE(denied.reason.empty());
    EXPECT_TRUE(observed_reject);

    AnalysisGate warn(Policy{}, boot::AdmissionMode::kWarn);
    const boot::AdmissionVerdict warned = warn.admit(bad);
    EXPECT_TRUE(warned.allow);
    EXPECT_GT(warned.errors, 0u);
}

TEST(AnalysisGate, BootRomReturnsPolicyRejectedAndSkipsMeasurement) {
    auto vendor = test_vendor(22);
    crypto::MonotonicCounterBank counters;
    boot::BootRom rom(vendor.public_key(), counters);
    AnalysisGate gate(Policy{}, boot::AdmissionMode::kDeny);
    rom.set_admission_gate(&gate);

    const boot::FirmwareImage bad =
        signed_image(vendor, wx_implant_program(), "implant");
    mem::Ram ram("app_ram", platform::kAppRamSize);
    boot::PcrBank pcrs;
    std::uint64_t cycles = 0;
    const boot::StageResult result =
        rom.boot_stage(bad, ram, platform::kAppRamBase, pcrs, cycles);
    EXPECT_EQ(result.status, boot::BootStatus::kPolicyRejected);
    EXPECT_EQ(boot::boot_status_name(result.status), "policy-rejected");
    // Rejected before "measure then load": no PCR entry, nothing loaded.
    EXPECT_TRUE(pcrs.log().empty());
    EXPECT_EQ(counters.value("fw_version"), 0u);
}

TEST(AnalysisGate, UpdateAgentReturnsPolicyRejectedAndCountsIt) {
    auto vendor = test_vendor(23);
    crypto::MonotonicCounterBank counters;
    boot::UpdateAgent agent(vendor.public_key(), counters);
    AnalysisGate gate(Policy{}, boot::AdmissionMode::kDeny);
    agent.set_admission_gate(&gate);

    const boot::FirmwareImage bad =
        signed_image(vendor, wx_implant_program(), "implant");
    EXPECT_EQ(agent.install(bad.serialize()),
              boot::UpdateStatus::kPolicyRejected);
    EXPECT_EQ(agent.rejected_installs(), 1u);
    EXPECT_FALSE(agent.inactive_image().has_value());

    const boot::FirmwareImage good =
        signed_image(vendor, platform::control_loop_program(), "ctrl");
    EXPECT_EQ(agent.install(good.serialize()), boot::UpdateStatus::kOk);
}

// --- end to end through the Node --------------------------------------

TEST(AnalysisGate, NodeDeniesMaliciousImageAndRecordsEvidence) {
    auto vendor = test_vendor(24);
    platform::NodeConfig config;
    config.resilient = true;
    platform::Node node(config);
    node.provision(vendor.public_key(), to_bytes("root"));
    ASSERT_NE(node.admission_gate, nullptr);

    const boot::FirmwareImage bad =
        signed_image(vendor, wx_implant_program(), "implant");
    const boot::BootReport report = node.secure_boot({bad});
    EXPECT_FALSE(report.success);
    ASSERT_EQ(report.stages.size(), 1u);
    EXPECT_EQ(report.stages[0].status, boot::BootStatus::kPolicyRejected);
    EXPECT_TRUE(node.cpu.halted());  // Nothing ran.

    const auto* rejects = node.metrics.find_counter("cres_analysis_rejects");
    ASSERT_NE(rejects, nullptr);
    EXPECT_EQ(rejects->value(), 1u);

    // The SSM drains the submitted boot event into sealed evidence.
    node.run(50);
    bool recorded = false;
    for (const auto& r : node.ssm->evidence().records()) {
        if (r.detail.find("static-verifier") != std::string::npos) {
            recorded = true;
        }
    }
    EXPECT_TRUE(recorded);
    EXPECT_TRUE(node.ssm->evidence().verify_chain());

    // The same node still admits healthy firmware afterwards.
    const boot::FirmwareImage good =
        signed_image(vendor, platform::control_loop_program(), "ctrl");
    EXPECT_TRUE(node.secure_boot({good}).success);
    EXPECT_EQ(rejects->value(), 1u);
}

TEST(AnalysisGate, MismatchedCachePolicyFallsBackToLocalAnalysis) {
    // The shared fleet cache analyzes under the *fleet's* policy. A
    // node provisioned with a stricter one must not admit from it:
    // the mul below is clean under the default policy already in the
    // cache, but this node bans it, so admission has to re-analyze
    // locally and reject.
    auto vendor = test_vendor(27);
    const isa::Program p = asm_at_code_base(R"(
    start:
        li   sp, 0x4fff0
        li   r1, 3
        mul  r1, r1, r1
        halt
    )");
    const boot::FirmwareImage image = signed_image(vendor, p, "muler");

    auto cache = std::make_shared<platform::AnalysisCache>();
    // Warm the cache with the default-policy verdict (no findings).
    const auto warmed = cache->get_or_analyze(
        platform::AnalysisCache::key_for(image.payload, image.load_addr,
                                         image.entry_point),
        image.payload, image.load_addr, image.entry_point);
    ASSERT_NE(warmed, nullptr);
    EXPECT_EQ(warmed->errors(), 0u);

    platform::NodeConfig config;
    config.admission_policy.banned_opcodes.push_back(isa::Opcode::kMul);
    config.analysis_cache = cache;
    platform::Node node(config);
    node.provision(vendor.public_key(), to_bytes("root"));
    ASSERT_NE(node.admission_gate, nullptr);

    const boot::BootReport report = node.secure_boot({image});
    EXPECT_FALSE(report.success);
    ASSERT_EQ(report.stages.size(), 1u);
    EXPECT_EQ(report.stages[0].status, boot::BootStatus::kPolicyRejected);
}

TEST(AnalysisGate, NodeWarnModeAdmitsButStillObserves) {
    auto vendor = test_vendor(25);
    platform::NodeConfig config;
    config.admission_mode = boot::AdmissionMode::kWarn;
    platform::Node node(config);
    node.provision(vendor.public_key(), to_bytes("root"));

    const boot::FirmwareImage bad =
        signed_image(vendor, wx_implant_program(), "implant");
    EXPECT_TRUE(node.secure_boot({bad}).success);
    const auto* total =
        node.metrics.find_counter("cres_analysis_images_total");
    ASSERT_NE(total, nullptr);
    EXPECT_EQ(total->value(), 1u);
    EXPECT_EQ(node.metrics.find_counter("cres_analysis_rejects"), nullptr);
}

TEST(AnalysisGate, NodeOffModeSkipsAnalysisEntirely) {
    auto vendor = test_vendor(26);
    platform::NodeConfig config;
    config.admission_mode = boot::AdmissionMode::kOff;
    platform::Node node(config);
    node.provision(vendor.public_key(), to_bytes("root"));
    EXPECT_EQ(node.admission_gate, nullptr);

    const boot::FirmwareImage bad =
        signed_image(vendor, wx_implant_program(), "implant");
    EXPECT_TRUE(node.secure_boot({bad}).success);
    EXPECT_EQ(node.metrics.find_counter("cres_analysis_images_total"),
              nullptr);
}

}  // namespace
}  // namespace cres::analysis
