// SIEM export layer tests: KATs for the RFC 5424 classification
// tables (core/event.h), the bounded per-device staging buffer, and
// the hash-chained fleet export stream (obs/siem.h) — including a
// whole-stream 1-byte-flip sweep for the tamper-evidence contract.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/event.h"
#include "obs/metrics.h"
#include "obs/siem.h"
#include "obs/syslog.h"
#include "util/bytes.h"

namespace cres::obs {
namespace {

// --- RFC 5424 classification KATs ------------------------------------------
// Every mapping is pinned as a known-answer test: both framings (the
// JSONL log sink and the SIEM stream) classify through these tables,
// so a silent change would re-label the whole estate's history.

TEST(SyslogKat, EverySeverityMappingPinned) {
    using core::EventSeverity;
    EXPECT_EQ(core::syslog_severity(EventSeverity::kInfo), 6);
    EXPECT_EQ(core::syslog_severity(EventSeverity::kAdvisory), 5);
    EXPECT_EQ(core::syslog_severity(EventSeverity::kAlert), 4);
    EXPECT_EQ(core::syslog_severity(EventSeverity::kCritical), 2);
}

TEST(SyslogKat, EveryFacilityMappingPinned) {
    using core::EventCategory;
    const std::pair<EventCategory, std::uint8_t> table[] = {
        {EventCategory::kBusViolation, 16}, {EventCategory::kControlFlow, 17},
        {EventCategory::kMemory, 18},       {EventCategory::kDataFlow, 19},
        {EventCategory::kPeripheral, 20},   {EventCategory::kTiming, 21},
        {EventCategory::kNetwork, 22},      {EventCategory::kEnvironment, 23},
        {EventCategory::kBoot, 0},          {EventCategory::kSystem, 13},
    };
    static_assert(std::size(table) == core::kEventCategoryCount);
    for (const auto& [category, facility] : table) {
        EXPECT_EQ(core::syslog_facility(category), facility)
            << core::category_name(category);
    }
}

TEST(SyslogKat, PriComposition) {
    using core::EventCategory;
    using core::EventSeverity;
    // PRI = facility * 8 + severity (RFC 5424 §6.2.1).
    EXPECT_EQ(core::syslog_pri(EventCategory::kNetwork,
                               EventSeverity::kAlert),
              22 * 8 + 4);
    EXPECT_EQ(core::syslog_pri(EventCategory::kBoot,
                               EventSeverity::kCritical),
              0 * 8 + 2);
    EXPECT_EQ(core::syslog_pri(EventCategory::kSystem,
                               EventSeverity::kInfo),
              13 * 8 + 6);
    EXPECT_EQ(rfc5424::pri(rfc5424::kFacLocal0, rfc5424::kWarning), 132);
    // The severity operand is masked to 3 bits.
    EXPECT_EQ(rfc5424::pri(0, 0xff), 7);
}

TEST(SyslogKat, KeywordsPinned) {
    const std::string_view severities[] = {"emerg",   "alert",  "crit",
                                           "err",     "warning", "notice",
                                           "info",    "debug"};
    for (std::uint8_t s = 0; s < 8; ++s) {
        EXPECT_EQ(rfc5424::severity_keyword(s), severities[s]) << int(s);
    }
    EXPECT_EQ(rfc5424::facility_keyword(rfc5424::kFacKern), "kern");
    EXPECT_EQ(rfc5424::facility_keyword(rfc5424::kFacAudit), "audit");
    EXPECT_EQ(rfc5424::facility_keyword(rfc5424::kFacLocal6), "local6");
    EXPECT_EQ(rfc5424::facility_keyword(42), "?");
}

TEST(SiemKat, KindNamesAndMsgidsPinned) {
    const std::pair<SiemKind, std::pair<std::string_view, std::string_view>>
        table[] = {
            {SiemKind::kEvent, {"event", "EVT"}},
            {SiemKind::kAlert, {"alert", "ALRT"}},
            {SiemKind::kState, {"state", "STATE"}},
            {SiemKind::kIncidentOpen, {"incident-open", "INCOPEN"}},
            {SiemKind::kIncidentClose, {"incident-close", "INCCLOSE"}},
            {SiemKind::kEvidenceHead, {"evidence-head", "EVHEAD"}},
            {SiemKind::kCampaign, {"campaign", "CAMPAIGN"}},
        };
    static_assert(std::size(table) == kSiemKindCount);
    for (const auto& [kind, names] : table) {
        EXPECT_EQ(siem_kind_name(kind), names.first);
        EXPECT_EQ(siem_kind_msgid(kind), names.second);
    }
}

// --- SiemBuffer: bounded staging with explicit backpressure -----------------

SiemEvent sample_event(std::uint64_t at) {
    SiemEvent event;
    event.at = at;
    event.kind = SiemKind::kEvent;
    event.severity = rfc5424::kNotice;
    event.facility = rfc5424::kFacLocal6;
    event.category = "network";
    event.source = "network-monitor";
    event.resource = "m2m";
    event.detail = "frame failed authentication";
    event.a = at;
    return event;
}

TEST(SiemBuffer, BoundedWithDropAccounting) {
    MetricsRegistry registry;
    SiemBuffer buffer(2);
    buffer.bind_metrics(registry);
    EXPECT_TRUE(buffer.enabled());

    EXPECT_TRUE(buffer.push(sample_event(1)));
    EXPECT_TRUE(buffer.push(sample_event(2)));
    EXPECT_FALSE(buffer.push(sample_event(3)));  // Full: dropped.
    EXPECT_EQ(buffer.size(), 2u);
    EXPECT_EQ(buffer.dropped(), 1u);
    EXPECT_EQ(registry.counter("cres_siem_dropped_total").value(), 1u);

    // Drain frees the slots, oldest first, and preserves payloads.
    const std::vector<SiemEvent> drained = buffer.drain();
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].at, 1u);
    EXPECT_EQ(drained[1].at, 2u);
    EXPECT_EQ(drained[1].detail, "frame failed authentication");
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_TRUE(buffer.push(sample_event(4)));
}

TEST(SiemBuffer, EarlyDropsPublishOnBindWithoutDoubleCount) {
    SiemBuffer buffer(1);
    EXPECT_TRUE(buffer.push(sample_event(1)));
    EXPECT_FALSE(buffer.push(sample_event(2)));  // Dropped before binding.
    EXPECT_EQ(buffer.dropped(), 1u);

    MetricsRegistry registry;
    buffer.bind_metrics(registry);
    EXPECT_EQ(registry.counter("cres_siem_dropped_total").value(), 1u);
    // Re-binding the same buffer must not double-publish old drops.
    buffer.bind_metrics(registry);
    EXPECT_EQ(registry.counter("cres_siem_dropped_total").value(), 1u);

    EXPECT_FALSE(buffer.push(sample_event(3)));
    EXPECT_EQ(registry.counter("cres_siem_dropped_total").value(), 2u);
}

TEST(SiemBuffer, ZeroCapacityDisablesButStillCounts) {
    SiemBuffer buffer(0);
    EXPECT_FALSE(buffer.enabled());
    EXPECT_FALSE(buffer.push(sample_event(1)));
    EXPECT_EQ(buffer.size(), 0u);
    EXPECT_EQ(buffer.dropped(), 1u);
}

// --- SiemStream: hash-chained dual-framed export ----------------------------

Bytes test_key() { return Bytes(32, 0xab); }

SiemStream sample_stream() {
    SiemStream stream(test_key());
    stream.append(0, "device-0", sample_event(100));
    SiemEvent alert = sample_event(250);
    alert.kind = SiemKind::kAlert;
    alert.severity = rfc5424::kWarning;
    alert.detail = "replay burst on \"m2m\" [sequence 2]";  // Escaped chars.
    stream.append(1, "device-1", alert);
    stream.append_evidence_head(1, "device-1", 300, 7,
                                "00ff00ff00ff00ff");
    return stream;
}

TEST(SiemStream, RecordFramingAndChainVerify) {
    const SiemStream stream = sample_stream();
    EXPECT_EQ(stream.records(), 3u);

    const std::string& jsonl = stream.jsonl();
    EXPECT_EQ(jsonl.compare(0, SiemStream::header().size(),
                            SiemStream::header()),
              0);
    // Fixed field order, severity/facility as numeric RFC 5424 codes,
    // PRI precomputed from them.
    EXPECT_NE(jsonl.find("\"seq\":0,\"at\":100,\"device\":\"device-0\","
                         "\"index\":0,\"kind\":\"event\",\"pri\":181,"
                         "\"severity\":5,\"facility\":22"),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"kind\":\"evidence-head\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"detail\":\"00ff00ff00ff00ff\",\"a\":7"),
              std::string::npos);

    const SiemVerifyResult verdict =
        SiemStream::verify(jsonl, test_key());
    EXPECT_TRUE(verdict.ok) << verdict.reason;
    EXPECT_EQ(verdict.records, 3u);
    // The last record's chain field is the stream head.
    EXPECT_NE(jsonl.find(stream.head_hex()), std::string::npos);
}

TEST(SiemStream, SyslogFramingRendersPriAndStructuredData) {
    const SiemStream stream = sample_stream();
    const std::string& syslog = stream.syslog();
    // <PRI>1 - HOSTNAME APP-NAME - MSGID [cres ...] detail
    EXPECT_EQ(syslog.compare(0, 7, "<181>1 "), 0);
    EXPECT_NE(syslog.find("<180>1 - device-1 network-monitor - ALRT "),
              std::string::npos);
    EXPECT_NE(syslog.find("[cres at=\"100\" category=\"network\" "
                          "resource=\"m2m\" a=\"100\" b=\"0\"]"),
              std::string::npos);
    EXPECT_NE(syslog.find("- EVHEAD "), std::string::npos);
    // One line per record.
    std::size_t lines = 0;
    for (const char c : syslog) lines += (c == '\n') ? 1 : 0;
    EXPECT_EQ(lines, stream.records());
}

TEST(SiemStream, TracedRecordsRenderTraceObjectAndStillChain) {
    SiemStream stream(test_key());
    stream.append(0, "device-0", sample_event(100));  // Untraced.
    SiemEvent traced = sample_event(200);
    traced.traced = true;
    traced.trace_origin = 3;
    traced.trace_hop = 2;
    traced.trace_span = (std::uint64_t{3} << 32) | 9;
    traced.trace_parent = (std::uint64_t{1} << 32) | 4;
    stream.append(1, "device-1", traced);

    const std::string& jsonl = stream.jsonl();
    // The trace object rides after "b" with the propagated context;
    // exactly one record carries it.
    EXPECT_NE(jsonl.find(",\"trace\":{\"origin\":3,\"hop\":2,\"span\":" +
                         std::to_string((std::uint64_t{3} << 32) | 9) +
                         ",\"parent\":" +
                         std::to_string((std::uint64_t{1} << 32) | 4) + "}"),
              std::string::npos);
    EXPECT_EQ(jsonl.find("\"trace\""), jsonl.rfind("\"trace\""));
    // The chain covers the trace bytes like any other body bytes.
    EXPECT_TRUE(SiemStream::verify(jsonl, test_key()).ok);
    std::string tampered = jsonl;
    const std::size_t hop = tampered.find("\"hop\":2");
    ASSERT_NE(hop, std::string::npos);
    tampered[hop + 6] = '5';
    EXPECT_FALSE(SiemStream::verify(tampered, test_key()).ok);
}

TEST(SiemStream, UntracedStreamsCarryNoTraceBytes) {
    // The v1 compatibility contract: a stream of untraced records is
    // byte-for-byte what a tracing-unaware build would have produced.
    const SiemStream stream = sample_stream();
    EXPECT_EQ(stream.jsonl().find("\"trace\""), std::string::npos);
    EXPECT_EQ(stream.syslog().find("trace"), std::string::npos);
}

TEST(SiemStream, EveryOneByteFlipBreaksTheChain) {
    const SiemStream stream = sample_stream();
    const std::string& jsonl = stream.jsonl();
    ASSERT_TRUE(SiemStream::verify(jsonl, test_key()).ok);
    // The tamper-evidence contract, exhaustively: flipping the low bit
    // of ANY byte — header, body, chain hex or line framing — fails.
    for (std::size_t i = 0; i < jsonl.size(); ++i) {
        std::string tampered = jsonl;
        tampered[i] ^= 0x01;
        EXPECT_FALSE(SiemStream::verify(tampered, test_key()).ok)
            << "byte " << i;
    }
}

TEST(SiemStream, WrongKeyAndMalformedStreamsFail) {
    const SiemStream stream = sample_stream();
    const Bytes wrong_key(32, 0xac);
    const SiemVerifyResult wrong =
        SiemStream::verify(stream.jsonl(), wrong_key);
    EXPECT_FALSE(wrong.ok);
    EXPECT_EQ(wrong.bad_line, 2u);  // First record after the header.
    EXPECT_EQ(wrong.reason, "chain mismatch");

    EXPECT_FALSE(SiemStream::verify("", test_key()).ok);
    EXPECT_FALSE(SiemStream::verify("{\"format\":\"bogus\"}\n",
                                    test_key())
                     .ok);
    // A record with the chain field ripped off is malformed.
    std::string no_chain(SiemStream::header());
    no_chain += "\n{\"seq\":0}\n";
    const SiemVerifyResult verdict =
        SiemStream::verify(no_chain, test_key());
    EXPECT_FALSE(verdict.ok);
    EXPECT_EQ(verdict.reason, "record has no chain field");
}

TEST(SiemStream, HeaderOnlyStreamIsValidAndEmpty) {
    std::string header_only(SiemStream::header());
    header_only += '\n';
    const SiemVerifyResult verdict =
        SiemStream::verify(header_only, test_key());
    EXPECT_TRUE(verdict.ok);
    EXPECT_EQ(verdict.records, 0u);
}

TEST(SiemStream, ChainDependsOnRecordOrder) {
    // Same two records, opposite order: different heads (the chain
    // pins the fleet's deterministic device-index drain order).
    SiemStream ab(test_key());
    ab.append(0, "a", sample_event(1));
    ab.append(1, "b", sample_event(2));
    SiemStream ba(test_key());
    ba.append(1, "b", sample_event(2));
    ba.append(0, "a", sample_event(1));
    EXPECT_NE(ab.head_hex(), ba.head_hex());
}

}  // namespace
}  // namespace cres::obs
