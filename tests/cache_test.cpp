// Cache model, timing side channel, cache monitor and the
// partition-cache countermeasure.
#include <gtest/gtest.h>

#include "attack/sidechannel.h"
#include "core/monitor/cache_monitor.h"
#include "mem/cache.h"
#include "util/error.h"

namespace cres {
namespace {

const mem::BusAttr kCpu{mem::Master::kCpu, false, true};
const mem::BusAttr kSecure{mem::Master::kCpu, true, true};
const mem::BusAttr kAttacker{mem::Master::kAttacker, false, false};

TEST(CachedRam, MissThenHitLatency) {
    mem::CachedRam cache("c", 0x1000);
    std::uint32_t out = 0;
    (void)cache.read(0x100, 4, out, kCpu);
    EXPECT_EQ(cache.last_latency(), mem::CachedRam::kMissLatency);
    (void)cache.read(0x104, 4, out, kCpu);  // Same 16-byte line.
    EXPECT_EQ(cache.last_latency(), mem::CachedRam::kHitLatency);
}

TEST(CachedRam, ConflictEviction) {
    mem::CachedRam cache("c", 0x1000, 16, 64);
    std::uint32_t out = 0;
    (void)cache.read(0x0, 4, out, kCpu);        // Set 0, tag 0.
    (void)cache.read(0x400, 4, out, kCpu);      // Set 0, tag 64: evicts.
    EXPECT_EQ(cache.stats(mem::Master::kCpu).evictions, 1u);
    (void)cache.read(0x0, 4, out, kCpu);        // Miss again.
    EXPECT_EQ(cache.last_latency(), mem::CachedRam::kMissLatency);
}

TEST(CachedRam, DataIntegrityThroughCache) {
    mem::CachedRam cache("c", 0x1000);
    std::uint32_t out = 0;
    (void)cache.write(0x20, 4, 0xdeadbeef, kCpu);
    (void)cache.read(0x20, 4, out, kCpu);
    EXPECT_EQ(out, 0xdeadbeefu);
    EXPECT_EQ(cache.backing().dump(0x20, 1)[0], 0xef);
}

TEST(CachedRam, FlushColdRestart) {
    mem::CachedRam cache("c", 0x1000);
    std::uint32_t out = 0;
    (void)cache.read(0x0, 4, out, kCpu);
    EXPECT_TRUE(cache.line_present(0x0));
    cache.flush();
    EXPECT_FALSE(cache.line_present(0x0));
}

TEST(CachedRam, PerMasterStats) {
    mem::CachedRam cache("c", 0x1000);
    std::uint32_t out = 0;
    (void)cache.read(0x0, 4, out, kCpu);
    (void)cache.read(0x0, 4, out, kAttacker);
    EXPECT_EQ(cache.stats(mem::Master::kCpu).misses, 1u);
    EXPECT_EQ(cache.stats(mem::Master::kAttacker).hits, 1u);
    EXPECT_EQ(cache.total_stats().hits + cache.total_stats().misses, 2u);
}

TEST(CachedRam, MissRateComputation) {
    mem::CachedRam cache("c", 0x1000);
    std::uint32_t out = 0;
    (void)cache.read(0x0, 4, out, kCpu);   // Miss.
    (void)cache.read(0x0, 4, out, kCpu);   // Hit.
    EXPECT_DOUBLE_EQ(cache.stats(mem::Master::kCpu).miss_rate(), 0.5);
    EXPECT_DOUBLE_EQ(mem::CacheStats{}.miss_rate(), 0.0);
}

TEST(CachedRam, GeometryValidation) {
    EXPECT_THROW(mem::CachedRam("c", 0x1000, 15, 64), MemError);
    EXPECT_THROW(mem::CachedRam("c", 0x1000, 16, 0), MemError);
}

TEST(CachedRam, PartitionSeparatesWorlds) {
    mem::CachedRam cache("c", 0x1000, 16, 64);
    cache.set_partitioned(true);
    std::uint32_t out = 0;
    // Same address, different worlds -> different sets; the secure
    // access must not evict the non-secure line.
    (void)cache.read(0x0, 4, out, kCpu);
    (void)cache.read(0x0, 4, out, kSecure);
    (void)cache.read(0x0, 4, out, kCpu);
    EXPECT_EQ(cache.last_latency(), mem::CachedRam::kHitLatency);
}

TEST(BusLatency, PropagatesToCpuStall) {
    mem::Bus bus;
    mem::CachedRam cache("c", 0x1000);
    bus.map(mem::RegionConfig{"c", 0, 0x1000, false, false}, cache);
    (void)bus.read(0x40, 4, kCpu);
    EXPECT_EQ(bus.last_latency(), mem::CachedRam::kMissLatency);
    (void)bus.read(0x40, 4, kCpu);
    EXPECT_EQ(bus.last_latency(), mem::CachedRam::kHitLatency);
}

TEST(SideChannel, OpenChannelLeaksReliably) {
    attack::SideChannelLab lab;
    EXPECT_GT(lab.recovery_accuracy(64), 0.95);
}

TEST(SideChannel, SingleNibbleExtraction) {
    attack::SideChannelLab lab;
    for (std::uint8_t secret = 0; secret < 16; ++secret) {
        const auto guess = lab.steal_nibble(secret);
        ASSERT_TRUE(guess.has_value()) << int(secret);
        EXPECT_EQ(*guess, secret);
    }
}

TEST(SideChannel, NoAccessViolationsInvolved) {
    // The leak works entirely through permitted accesses.
    attack::SideChannelLab lab;
    struct Counter : mem::BusObserver {
        int denied = 0;
        void on_transaction(const mem::BusTransaction& txn) override {
            if (txn.response != mem::BusResponse::kOk) ++denied;
        }
    } counter;
    lab.bus().add_observer(&counter);
    (void)lab.steal_nibble(7);
    lab.bus().remove_observer(&counter);
    EXPECT_EQ(counter.denied, 0);
}

TEST(SideChannel, PartitioningClosesChannel) {
    attack::SideChannelLab lab;
    lab.enable_partitioning();
    // Recovery collapses to (at best) chance; typically the probe sees
    // no eviction at all.
    EXPECT_LT(lab.recovery_accuracy(64), 0.2);
}

TEST(CacheMonitorTest, DetectsEvictionStorm) {
    attack::SideChannelLab lab;
    sim::Simulator sim;
    struct Sink : core::EventSink {
        int alerts = 0;
        void submit(const core::MonitorEvent& e) override {
            if (e.severity >= core::EventSeverity::kAlert) ++alerts;
        }
    } sink;
    core::CacheMonitor monitor(sink, sim, lab.cache(), 8, 100);
    sim.add_tickable(&monitor);

    // Quiet period: no alerts.
    sim.run_for(300);
    EXPECT_EQ(sink.alerts, 0);

    // Attack burst: prime+probe rounds generate eviction storms.
    for (int i = 0; i < 20; ++i) (void)lab.steal_nibble(5);
    sim.run_for(200);
    EXPECT_GE(sink.alerts, 1);
    EXPECT_GE(monitor.storms_detected(), 1u);
}

TEST(CacheMonitorTest, BenignTrafficSilent) {
    sim::Simulator sim;
    mem::CachedRam cache("c", 0x1000);
    struct Sink : core::EventSink {
        int events = 0;
        void submit(const core::MonitorEvent&) override { ++events; }
    } sink;
    core::CacheMonitor monitor(sink, sim, cache, 8, 100);
    sim.add_tickable(&monitor);
    // Plenty of CPU traffic; the attacker master stays quiet.
    std::uint32_t out = 0;
    for (int i = 0; i < 1000; ++i) {
        (void)cache.read(static_cast<mem::Addr>(i * 4) % 0x1000, 4, out,
                         kCpu);
    }
    sim.run_for(500);
    EXPECT_EQ(sink.events, 0);
}

}  // namespace
}  // namespace cres
