// Active Runtime Resource Monitor tests: each monitor's detection
// logic, enable/disable gating, and event contents.
#include <gtest/gtest.h>

#include "core/monitor/bus_monitor.h"
#include "core/monitor/cfi_monitor.h"
#include "core/monitor/dift_monitor.h"
#include "core/monitor/environment_monitor.h"
#include "core/monitor/memory_monitor.h"
#include "core/monitor/network_monitor.h"
#include "core/monitor/peripheral_monitor.h"
#include "core/monitor/redundancy_monitor.h"
#include "core/monitor/timing_monitor.h"
#include "isa/assembler.h"
#include "mem/ram.h"

namespace cres::core {
namespace {

/// Collects everything monitors emit.
class CollectingSink : public EventSink {
public:
    void submit(const MonitorEvent& event) override {
        events.push_back(event);
    }

    [[nodiscard]] std::size_t count(EventCategory category,
                                    EventSeverity min_severity =
                                        EventSeverity::kInfo) const {
        std::size_t n = 0;
        for (const auto& e : events) {
            if (e.category == category && e.severity >= min_severity) ++n;
        }
        return n;
    }

    [[nodiscard]] bool saw(EventCategory category,
                           EventSeverity min_severity) const {
        return count(category, min_severity) > 0;
    }

    std::vector<MonitorEvent> events;
};

const mem::BusAttr kNormal{mem::Master::kCpu, false, false};
const mem::BusAttr kDma{mem::Master::kDma, false, false};

class BusMonFixture : public ::testing::Test {
protected:
    BusMonFixture() : ram("ram", 0x1000), secret("secret", 0x100) {
        bus.map(mem::RegionConfig{"ram", 0x0, 0x1000, false, false}, ram);
        bus.map(mem::RegionConfig{"secret", 0x8000, 0x100, true, false},
                secret);
        monitor = std::make_unique<BusMonitor>(sink, sim, bus);
    }

    CollectingSink sink;
    sim::Simulator sim;
    mem::Bus bus;
    mem::Ram ram;
    mem::Ram secret;
    std::unique_ptr<BusMonitor> monitor;
};

TEST_F(BusMonFixture, SecurityViolationIsAlert) {
    (void)bus.read(0x8000, 4, kNormal);
    ASSERT_EQ(sink.events.size(), 1u);
    EXPECT_EQ(sink.events[0].category, EventCategory::kBusViolation);
    EXPECT_EQ(sink.events[0].severity, EventSeverity::kAlert);
    EXPECT_EQ(sink.events[0].resource, "secret");
}

TEST_F(BusMonFixture, ProbeDetectionEscalates) {
    monitor->set_probe_threshold(4, 1000);
    for (int i = 0; i < 4; ++i) {
        (void)bus.read(0x9000'0000 + static_cast<mem::Addr>(i) * 4, 4,
                       kNormal);
    }
    EXPECT_TRUE(sink.saw(EventCategory::kBusViolation, EventSeverity::kAlert));
}

TEST_F(BusMonFixture, IsolatedDecodeProbesOutsideWindowStayAdvisory) {
    monitor->set_probe_threshold(4, 10);
    for (int i = 0; i < 4; ++i) {
        (void)bus.read(0x9000'0000, 4, kNormal);
        sim.run_for(50);  // Spread them beyond the window.
    }
    EXPECT_FALSE(sink.saw(EventCategory::kBusViolation,
                          EventSeverity::kAlert));
    EXPECT_EQ(sink.count(EventCategory::kBusViolation), 4u);
}

TEST_F(BusMonFixture, MasterAllowlistViolation) {
    monitor->allow_master(mem::Master::kDma, {"ram"});
    (void)bus.read(0x0, 4, kDma);  // Allowed.
    EXPECT_EQ(sink.events.size(), 0u);
    (void)bus.read(0x8000, 4,
                   mem::BusAttr{mem::Master::kDma, true, false});  // Denied.
    EXPECT_TRUE(sink.saw(EventCategory::kBusViolation, EventSeverity::kAlert));
}

TEST_F(BusMonFixture, ForensicRingKeepsRecentTransactions) {
    for (int i = 0; i < 100; ++i) {
        (void)bus.write(0x10, 4, static_cast<std::uint32_t>(i), kNormal);
    }
    EXPECT_EQ(monitor->recent().size(), 64u);
    EXPECT_EQ(monitor->recent().back().data, 99u);
}

TEST_F(BusMonFixture, DisabledMonitorEmitsNothing) {
    monitor->set_enabled(false);
    (void)bus.read(0x8000, 4, kNormal);
    EXPECT_TRUE(sink.events.empty());
    EXPECT_EQ(monitor->events_emitted(), 0u);
}

class CfiFixture : public ::testing::Test {
protected:
    CfiFixture() : ram("ram", 0x10000), cpu("cpu0", bus) {
        bus.map(mem::RegionConfig{"ram", 0x0, 0x10000, false, false}, ram);
        monitor = std::make_unique<CfiMonitor>(sink, sim, cpu);
        sim.add_tickable(&cpu);
    }

    void run_program(const std::string& source, std::size_t max_steps = 2000) {
        const isa::Program p = isa::assemble(source, 0);
        ram.load(0, p.code);
        cpu.reset(0);
        std::size_t steps = 0;
        while (!cpu.halted() && steps++ < max_steps) cpu.step();
    }

    CollectingSink sink;
    sim::Simulator sim;
    mem::Bus bus;
    mem::Ram ram;
    isa::Cpu cpu;
    std::unique_ptr<CfiMonitor> monitor;
};

TEST_F(CfiFixture, CleanCallsRaiseNothing) {
    run_program(R"(
        li   sp, 0xf000
        call f1
        call f1
        halt
    f1: addi sp, sp, -4
        sw   lr, sp, 0
        call f2
        lw   lr, sp, 0
        addi sp, sp, 4
        ret
    f2: ret
    )");
    EXPECT_EQ(sink.count(EventCategory::kControlFlow, EventSeverity::kAlert),
              0u);
    EXPECT_EQ(monitor->shadow_depth(), 0u);
}

TEST_F(CfiFixture, CorruptedReturnDetected) {
    // The callee overwrites lr before returning — the classic smashed
    // return address.
    run_program(R"(
        call victim
        halt
    landing:
        halt
    victim:
        la  lr, landing   ; corrupt the link register
        ret
    )");
    EXPECT_GE(sink.count(EventCategory::kControlFlow,
                         EventSeverity::kCritical),
              1u);
}

TEST_F(CfiFixture, ReturnWithoutCallDetected) {
    run_program(R"(
        la  lr, done
        ret
    done:
        halt
    )");
    EXPECT_TRUE(sink.saw(EventCategory::kControlFlow, EventSeverity::kAlert));
}

TEST_F(CfiFixture, InvalidCallTargetDetected) {
    const isa::Program p = isa::assemble(R"(
        li   r1, 0x500      ; not a declared function
        jalr lr, r1, 0
        halt
    )");
    ram.load(0, p.code);
    // 0x500 holds zeros = nop sled... declare only symbol "main"=0.
    ram.load(0x500, isa::assemble("ret\n").code);
    monitor->set_valid_targets({0x100});  // Only 0x100 is legal.
    cpu.reset(0);
    for (int i = 0; i < 50 && !cpu.halted(); ++i) cpu.step();
    EXPECT_TRUE(sink.saw(EventCategory::kControlFlow, EventSeverity::kAlert));
}

TEST_F(CfiFixture, ResetClearsShadowStack) {
    run_program(R"(
        call f
        halt
    f:  halt   ; never returns; leaves a frame on the shadow stack
    )");
    EXPECT_EQ(monitor->shadow_depth(), 1u);
    monitor->reset();
    EXPECT_EQ(monitor->shadow_depth(), 0u);
}

class MemMonFixture : public ::testing::Test {
protected:
    MemMonFixture() : code("code", 0x1000), data("data", 0x1000) {
        bus.map(mem::RegionConfig{"code", 0x0, 0x1000, false, false}, code);
        bus.map(mem::RegionConfig{"data", 0x4000, 0x1000, false, false}, data);
        monitor = std::make_unique<MemoryMonitor>(sink, sim, bus);
        monitor->protect_code_region("code");
    }

    CollectingSink sink;
    sim::Simulator sim;
    mem::Bus bus;
    mem::Ram code;
    mem::Ram data;
    std::unique_ptr<MemoryMonitor> monitor;
};

TEST_F(MemMonFixture, CodeWriteIsCritical) {
    (void)bus.write(0x100, 4, 0xdead, kNormal);
    EXPECT_TRUE(sink.saw(EventCategory::kMemory, EventSeverity::kCritical));
}

TEST_F(MemMonFixture, DataWriteIsFine) {
    (void)bus.write(0x4000, 4, 1, kNormal);
    EXPECT_TRUE(sink.events.empty());
}

TEST_F(MemMonFixture, CanaryOverwriteDetected) {
    monitor->watch_canary(0x4100, 0xcafebabe);
    (void)bus.write(0x4100, 4, 0xcafebabe, kNormal);  // Preserving is ok.
    EXPECT_TRUE(sink.events.empty());
    (void)bus.write(0x4100, 4, 0x41414141, kNormal);  // Smash.
    EXPECT_TRUE(sink.saw(EventCategory::kMemory, EventSeverity::kCritical));
}

TEST_F(MemMonFixture, PartialCanaryOverwriteDetected) {
    monitor->watch_canary(0x4100, 0xcafebabe);
    (void)bus.write(0x4102, 1, 0x41, kNormal);  // Byte inside the canary.
    EXPECT_TRUE(sink.saw(EventCategory::kMemory, EventSeverity::kCritical));
}

TEST_F(MemMonFixture, BulkReadHeuristicFires) {
    monitor->watch_sensitive("keyblock", 0x4800, 0x100, 64, 10000);
    for (mem::Addr a = 0; a < 64; a += 4) {
        (void)bus.read(0x4800 + a, 4, kNormal);
    }
    EXPECT_TRUE(sink.saw(EventCategory::kMemory, EventSeverity::kAlert));
}

TEST_F(MemMonFixture, SparseReadsBelowThresholdSilent) {
    monitor->watch_sensitive("keyblock", 0x4800, 0x100, 64, 10);
    for (int i = 0; i < 32; ++i) {
        (void)bus.read(0x4800, 4, kNormal);
        sim.run_for(50);  // Each read in its own window.
    }
    EXPECT_FALSE(sink.saw(EventCategory::kMemory, EventSeverity::kAlert));
}

class DiftFixture : public ::testing::Test {
protected:
    DiftFixture() : ram("ram", 0x1000), nic_buf("nic", 0x100) {
        bus.map(mem::RegionConfig{"ram", 0x0, 0x1000, false, false}, ram);
        bus.map(mem::RegionConfig{"nic", 0x8000, 0x100, false, false},
                nic_buf);
        monitor = std::make_unique<DiftMonitor>(sink, sim, bus);
        monitor->add_source(0x200, 0x20);  // Secret at 0x200.
        monitor->add_sink_region("nic");
    }

    CollectingSink sink;
    sim::Simulator sim;
    mem::Bus bus;
    mem::Ram ram;
    mem::Ram nic_buf;
    std::unique_ptr<DiftMonitor> monitor;
};

TEST_F(DiftFixture, DirectLeakDetected) {
    (void)bus.read(0x200, 4, kNormal);        // Read secret -> taint cpu.
    (void)bus.write(0x8000, 4, 0xfeed, kNormal);  // Write to sink.
    EXPECT_TRUE(sink.saw(EventCategory::kDataFlow, EventSeverity::kCritical));
    EXPECT_EQ(monitor->leaked_bytes(), 4u);
}

TEST_F(DiftFixture, IndirectLeakThroughMemoryDetected) {
    (void)bus.read(0x200, 4, kNormal);         // Taint cpu.
    (void)bus.write(0x600, 4, 0x1234, kNormal);  // Stage in plain RAM.
    EXPECT_TRUE(monitor->is_tainted(0x600));
    (void)bus.write(0x8000, 4, 0x1234, kNormal);  // Exfiltrate.
    EXPECT_TRUE(sink.saw(EventCategory::kDataFlow, EventSeverity::kCritical));
}

TEST_F(DiftFixture, CleanTrafficSilent) {
    (void)bus.read(0x700, 4, kNormal);
    (void)bus.write(0x8000, 4, 42, kNormal);
    EXPECT_EQ(sink.count(EventCategory::kDataFlow, EventSeverity::kCritical),
              0u);
    EXPECT_EQ(monitor->leaked_bytes(), 0u);
}

TEST_F(DiftFixture, OverwriteClearsTaint) {
    (void)bus.read(0x200, 4, kNormal);           // cpu tainted.
    (void)bus.write(0x600, 4, 0, kNormal);       // 0x600 tainted.
    // An untainted master overwrites the staged copy.
    (void)bus.write(0x600, 4, 0, kDma);
    EXPECT_FALSE(monitor->is_tainted(0x600));
}

TEST_F(DiftFixture, SourceAddressesAlwaysTainted) {
    EXPECT_TRUE(monitor->is_tainted(0x200));
    EXPECT_TRUE(monitor->is_tainted(0x21f));
    EXPECT_FALSE(monitor->is_tainted(0x220));
}

class PeriphFixture : public ::testing::Test {
protected:
    PeriphFixture() : act("breaker", -100.0, 100.0),
                      sensor("grid", [](sim::Cycle) { return 50.0; }, 10) {
        bus.map(mem::RegionConfig{"breaker", 0x7000, 0x100, false, false},
                act);
        monitor = std::make_unique<PeripheralMonitor>(sink, sim, bus);
        monitor->watch_actuator(
            "breaker", 0x7000 + dev::Actuator::kRegCommand,
            ActuatorEnvelope{-50.0, 50.0, 10.0, 8, 1000});
        sim.add_tickable(&act);
        sim.add_tickable(&sensor);
        sim.add_tickable(monitor.get());
    }

    void command(double value) {
        (void)bus.write(0x7000 + dev::Actuator::kRegCommand, 4,
                        static_cast<std::uint32_t>(dev::to_fixed(value)),
                        kNormal);
    }

    CollectingSink sink;
    sim::Simulator sim;
    mem::Bus bus;
    dev::Actuator act;
    dev::Sensor sensor;
    std::unique_ptr<PeripheralMonitor> monitor;
};

TEST_F(PeriphFixture, InRangeCommandsSilent) {
    command(10.0);
    sim.run_for(200);
    command(15.0);
    EXPECT_EQ(sink.count(EventCategory::kPeripheral), 0u);
}

TEST_F(PeriphFixture, OutOfRangeCommandCritical) {
    command(80.0);
    EXPECT_TRUE(sink.saw(EventCategory::kPeripheral,
                         EventSeverity::kCritical));
}

TEST_F(PeriphFixture, SlewViolationAlert) {
    command(0.0);
    command(30.0);  // Jump of 30 > max_slew 10.
    EXPECT_TRUE(sink.saw(EventCategory::kPeripheral, EventSeverity::kAlert));
}

TEST_F(PeriphFixture, CommandFloodAlert) {
    for (int i = 0; i < 12; ++i) command(1.0);
    EXPECT_TRUE(sink.saw(EventCategory::kPeripheral, EventSeverity::kAlert));
}

TEST_F(PeriphFixture, SensorEnvelopeViolation) {
    monitor->watch_sensor(sensor, SensorEnvelope{40.0, 60.0, 5.0}, 10);
    sim.run_for(50);
    EXPECT_EQ(sink.count(EventCategory::kPeripheral), 0u);
    sensor.set_spoof([](sim::Cycle) { return 500.0; });  // Absurd value.
    sim.run_for(50);
    EXPECT_TRUE(sink.saw(EventCategory::kPeripheral, EventSeverity::kAlert));
}

TEST_F(PeriphFixture, SensorStepImplausible) {
    monitor->watch_sensor(sensor, SensorEnvelope{0.0, 100.0, 5.0}, 10);
    sim.run_for(50);
    sensor.set_spoof([](sim::Cycle) { return 80.0; });  // In range, big step.
    sim.run_for(50);
    EXPECT_TRUE(sink.saw(EventCategory::kPeripheral, EventSeverity::kAlert));
}

TEST(TimingMon, MissedHeartbeatEscalates) {
    CollectingSink sink;
    sim::Simulator sim;
    TimingMonitor monitor(sink, sim);
    sim.add_tickable(&monitor);

    monitor.register_task("control-loop", 100);
    for (int i = 0; i < 5; ++i) {
        sim.run_for(50);
        monitor.heartbeat("control-loop");
    }
    EXPECT_EQ(sink.count(EventCategory::kTiming, EventSeverity::kAlert), 0u);

    sim.run_for(200);  // Task goes quiet.
    EXPECT_EQ(monitor.missed_deadlines("control-loop"), 1u);
    EXPECT_TRUE(sink.saw(EventCategory::kTiming, EventSeverity::kAlert));

    monitor.heartbeat("control-loop");  // Resumes.
    sim.run_for(50);
    // Third miss escalates to critical.
    sim.run_for(200);
    monitor.heartbeat("control-loop");
    sim.run_for(200);
    monitor.heartbeat("control-loop");
    sim.run_for(200);
    EXPECT_TRUE(sink.saw(EventCategory::kTiming, EventSeverity::kCritical));
}

TEST(TimingMon, UnregisteredTaskIgnored) {
    CollectingSink sink;
    sim::Simulator sim;
    TimingMonitor monitor(sink, sim);
    monitor.heartbeat("ghost");  // No crash, no event.
    monitor.register_task("t", 10);
    monitor.unregister_task("t");
    sim.add_tickable(&monitor);
    sim.run_for(100);
    EXPECT_TRUE(sink.events.empty());
}

TEST(NetworkMon, FailureStreakEscalates) {
    CollectingSink sink;
    sim::Simulator sim;
    NetworkMonitor monitor(sink, sim);
    monitor.set_failure_streak_threshold(3);

    monitor.note_rx(net::RecvStatus::kBadTag, 64);
    monitor.note_rx(net::RecvStatus::kBadTag, 64);
    EXPECT_FALSE(sink.saw(EventCategory::kNetwork, EventSeverity::kCritical));
    monitor.note_rx(net::RecvStatus::kBadTag, 64);
    EXPECT_TRUE(sink.saw(EventCategory::kNetwork, EventSeverity::kCritical));
    EXPECT_EQ(monitor.auth_failures(), 3u);
}

TEST(NetworkMon, SuccessResetsStreak) {
    CollectingSink sink;
    sim::Simulator sim;
    NetworkMonitor monitor(sink, sim);
    monitor.set_failure_streak_threshold(3);
    monitor.note_rx(net::RecvStatus::kBadTag, 64);
    monitor.note_rx(net::RecvStatus::kOk, 64);
    monitor.note_rx(net::RecvStatus::kBadTag, 64);
    monitor.note_rx(net::RecvStatus::kBadTag, 64);
    EXPECT_FALSE(sink.saw(EventCategory::kNetwork, EventSeverity::kCritical));
}

TEST(NetworkMon, SingleReplayIsAdvisoryWithSequenceFingerprint) {
    CollectingSink sink;
    sim::Simulator sim;
    NetworkMonitor monitor(sink, sim);
    monitor.note_rx(net::RecvStatus::kReplay, 64, 7);
    EXPECT_FALSE(sink.saw(EventCategory::kNetwork, EventSeverity::kAlert));
    ASSERT_EQ(sink.count(EventCategory::kNetwork, EventSeverity::kAdvisory),
              1u);
    // The replayed sequence number rides on `a` for fleet correlation.
    EXPECT_EQ(sink.events.back().a, 7u);
}

TEST(NetworkMon, ReplayBurstEscalatesToAlert) {
    CollectingSink sink;
    sim::Simulator sim;
    NetworkMonitor monitor(sink, sim);
    monitor.note_rx(net::RecvStatus::kReplay, 64, 7);
    monitor.note_rx(net::RecvStatus::kReplay, 64, 7);
    EXPECT_FALSE(sink.saw(EventCategory::kNetwork, EventSeverity::kAlert));
    monitor.note_rx(net::RecvStatus::kReplay, 64, 7);
    EXPECT_TRUE(sink.saw(EventCategory::kNetwork, EventSeverity::kAlert));
    EXPECT_EQ(monitor.auth_failures(), 3u);
}

TEST(NetworkMon, FloodDetected) {
    CollectingSink sink;
    sim::Simulator sim;
    NetworkMonitor monitor(sink, sim);
    monitor.set_flood_threshold(50, 1000);
    for (int i = 0; i < 50; ++i) monitor.note_rx(net::RecvStatus::kOk, 64);
    EXPECT_TRUE(sink.saw(EventCategory::kNetwork, EventSeverity::kAlert));
}

TEST(EnvironmentMon, GlitchDetectedOnceAndRecovery) {
    CollectingSink sink;
    sim::Simulator sim;
    dev::PowerSensor power("pwr", 3.3, 45.0);
    EnvironmentMonitor monitor(sink, sim, power,
                               EnvironmentEnvelope{3.0, 3.6, -20, 85}, 10);
    sim.add_tickable(&power);
    sim.add_tickable(&monitor);

    sim.run_for(100);
    EXPECT_EQ(sink.count(EventCategory::kEnvironment), 0u);

    power.inject_glitch(1.0, 40);
    sim.run_for(40);
    EXPECT_EQ(sink.count(EventCategory::kEnvironment, EventSeverity::kAlert),
              1u);
    sim.run_for(100);  // Back in envelope -> one info event.
    EXPECT_EQ(monitor.excursions(), 1u);
}

TEST(EnvironmentMon, ThermalExcursion) {
    CollectingSink sink;
    sim::Simulator sim;
    dev::PowerSensor power("pwr", 3.3, 45.0);
    EnvironmentMonitor monitor(sink, sim, power,
                               EnvironmentEnvelope{3.0, 3.6, -20, 85}, 10);
    sim.add_tickable(&monitor);
    power.set_temperature(120.0);
    sim.run_for(20);
    EXPECT_TRUE(sink.saw(EventCategory::kEnvironment, EventSeverity::kAlert));
}

TEST(RedundancyMon, LockstepDivergenceDetected) {
    CollectingSink sink;
    sim::Simulator sim;
    mem::Bus bus_a, bus_b;
    mem::Ram ram_a("ram", 0x1000), ram_b("ram", 0x1000);
    bus_a.map(mem::RegionConfig{"ram", 0, 0x1000, false, false}, ram_a);
    bus_b.map(mem::RegionConfig{"ram", 0, 0x1000, false, false}, ram_b);
    isa::Cpu primary("cpu0", bus_a), shadow("cpu0s", bus_b);

    const isa::Program p = isa::assemble(R"(
    loop:
        addi r1, r1, 1
        j loop
    )");
    ram_a.load(0, p.code);
    ram_b.load(0, p.code);
    primary.reset(0);
    shadow.reset(0);

    RedundancyMonitor monitor(sink, sim, primary, shadow, 16);
    sim.add_tickable(&primary);
    sim.add_tickable(&shadow);
    sim.add_tickable(&monitor);

    sim.run_for(200);
    EXPECT_EQ(monitor.divergences(), 0u);

    // Single-event upset / targeted attack on the primary only.
    primary.set_reg(1, 0xdeadbeef);
    sim.run_for(100);
    EXPECT_EQ(monitor.divergences(), 1u);
    EXPECT_TRUE(sink.saw(EventCategory::kMemory, EventSeverity::kCritical));
}

}  // namespace
}  // namespace cres::core
