// Spectre-PHT gadget tests (paper §IV, [17],[18]): speculative
// execution leaks architecturally-unreachable secrets through the
// cache; partitioning (or correct prediction) stops the transmitter.
#include <gtest/gtest.h>

#include "attack/sidechannel.h"
#include "util/rng.h"

namespace cres::attack {
namespace {

TEST(Spectre, LeaksSecretBeyondBoundsCheck) {
    SideChannelLab lab;
    Rng rng(91);
    const Bytes secret = rng.bytes(16);
    EXPECT_GT(lab.spectre_recovery_accuracy(secret), 0.9);
}

TEST(Spectre, SingleNibbleRecovery) {
    SideChannelLab lab;
    Bytes secret = {0x07, 0x3a, 0xf1, 0x5c};
    lab.plant_spectre_secret(secret);
    for (std::uint32_t i = 0; i < secret.size(); ++i) {
        const auto guess = lab.spectre_steal_nibble(i);
        ASSERT_TRUE(guess.has_value()) << i;
        EXPECT_EQ(*guess, secret[i] & 0x0f) << i;
    }
}

TEST(Spectre, CorrectPredictionLeaksNothing) {
    SideChannelLab lab;
    lab.plant_spectre_secret(Bytes{0x09});
    lab.prime();
    // Bounds check predicted correctly: no speculative window.
    lab.spectre_victim(20, /*mistrained=*/false);
    lab.spectre_victim(100, /*mistrained=*/false);
    // No probe set was evicted by the victim.
    const auto leaked = lab.probe();
    EXPECT_FALSE(leaked.has_value());
}

TEST(Spectre, PartitioningClosesTheTransmitter) {
    SideChannelLab lab;
    lab.enable_partitioning();
    Rng rng(92);
    const Bytes secret = rng.bytes(16);
    EXPECT_LT(lab.spectre_recovery_accuracy(secret), 0.2);
}

TEST(Spectre, InBoundsServiceIsLegitimate) {
    // The gadget is a *victim*, not malware: in-bounds calls are the
    // service working as intended.
    SideChannelLab lab;
    lab.spectre_victim(3, false);  // No crash, normal operation.
    SUCCEED();
}

}  // namespace
}  // namespace cres::attack
