// TEE baseline and network-layer tests: secure storage behind the bus
// attribute, quote generation/verification, authenticated channels,
// replay/MITM resistance, and the attestation protocol.
#include <gtest/gtest.h>

#include "dev/nic.h"
#include "mem/ram.h"
#include "net/attestation.h"
#include "net/channel.h"
#include "tee/tee.h"
#include "util/error.h"

namespace cres {
namespace {

const mem::BusAttr kNormal{mem::Master::kCpu, false, false};
const mem::BusAttr kSecure{mem::Master::kCpu, true, true};

class TeeFixture : public ::testing::Test {
protected:
    TeeFixture() : secure_ram("tee_ram", 0x1000) {
        bus.map(mem::RegionConfig{"tee_ram", 0x5000'0000, 0x1000,
                                  /*secure_only=*/true, false},
                secure_ram);
        tee = std::make_unique<tee::Tee>(bus, 0x5000'0000, 0x1000);
    }

    mem::Bus bus;
    mem::Ram secure_ram;
    std::unique_ptr<tee::Tee> tee;
};

TEST_F(TeeFixture, SecureWorldReadsProvisionedKey) {
    tee->provision_key("attest", to_bytes("super-secret"));
    const auto key = tee->get_key("attest", kSecure);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, to_bytes("super-secret"));
}

TEST_F(TeeFixture, NormalWorldDeniedByBusAttribute) {
    tee->provision_key("attest", to_bytes("super-secret"));
    EXPECT_FALSE(tee->get_key("attest", kNormal).has_value());
}

TEST_F(TeeFixture, AttributeTamperingExposesKey) {
    // The [34] attack: flip the region's secure attribute, read the key
    // with plain non-secure transactions. The TEE cannot tell.
    tee->provision_key("attest", to_bytes("super-secret"));
    ASSERT_TRUE(bus.set_secure_only("tee_ram", false));
    const auto key = tee->get_key("attest", kNormal);
    ASSERT_TRUE(key.has_value());
    EXPECT_EQ(*key, to_bytes("super-secret"));
}

TEST_F(TeeFixture, SecureStorageRoundTrip) {
    tee->store("config", to_bytes("mode=critical"));
    const auto blob = tee->load("config", kSecure);
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(*blob, to_bytes("mode=critical"));
    EXPECT_FALSE(tee->load("config", kNormal).has_value());
    EXPECT_FALSE(tee->load("missing", kSecure).has_value());
}

TEST_F(TeeFixture, OverwriteInPlace) {
    tee->store("x", to_bytes("aaaa"));
    tee->store("x", to_bytes("bb"));
    const auto blob = tee->load("x", kSecure);
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(*blob, to_bytes("bb"));
}

TEST_F(TeeFixture, ExhaustionThrows) {
    EXPECT_THROW(tee->store("big", Bytes(0x2000, 1)), PlatformError);
}

TEST_F(TeeFixture, PlacementRevealsPhysicalAddress) {
    tee->provision_key("attest", to_bytes("k"));
    const auto p = tee->placement("attest");
    ASSERT_TRUE(p.has_value());
    EXPECT_GE(p->addr, 0x5000'0000u);
    EXPECT_EQ(p->size, 1u);
    EXPECT_FALSE(tee->placement("nope").has_value());
}

TEST_F(TeeFixture, QuoteVerifies) {
    tee->provision_key("attest", to_bytes("shared-key"));
    boot::PcrBank pcrs;
    crypto::Hash256 m;
    m.fill(4);
    pcrs.extend(boot::PcrBank::kPcrFirmware, m);

    const auto quote = tee->quote(pcrs, to_bytes("nonce123"), "attest");
    ASSERT_TRUE(quote.has_value());
    EXPECT_TRUE(tee::verify_quote(*quote, to_bytes("shared-key"),
                                  pcrs.composite()));
    // Wrong key or wrong expected composite fail.
    EXPECT_FALSE(tee::verify_quote(*quote, to_bytes("other-key"),
                                   pcrs.composite()));
    boot::PcrBank other;
    EXPECT_FALSE(tee::verify_quote(*quote, to_bytes("shared-key"),
                                   other.composite()));
}

TEST_F(TeeFixture, QuoteWithoutKeyFails) {
    boot::PcrBank pcrs;
    EXPECT_FALSE(tee->quote(pcrs, to_bytes("n"), "missing").has_value());
}

class ChannelFixture : public ::testing::Test {
protected:
    ChannelFixture() : nic_a("nicA"), nic_b("nicB") {
        link.attach(nic_a, nic_b);
        alice = std::make_unique<net::SecureChannel>(nic_a,
                                                     to_bytes("channel-key"));
        bob = std::make_unique<net::SecureChannel>(nic_b,
                                                   to_bytes("channel-key"));
    }

    dev::Nic nic_a, nic_b;
    dev::Link link;
    std::unique_ptr<net::SecureChannel> alice, bob;
};

TEST_F(ChannelFixture, AuthenticatedRoundTrip) {
    alice->send(to_bytes("hello"));
    const auto got = bob->poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->status, net::RecvStatus::kOk);
    EXPECT_EQ(got->payload, to_bytes("hello"));
    EXPECT_EQ(got->sequence, 1u);
    EXPECT_EQ(bob->accepted(), 1u);
}

TEST_F(ChannelFixture, EmptyQueuePollsNothing) {
    EXPECT_FALSE(bob->poll().has_value());
}

TEST_F(ChannelFixture, TamperedFrameRejected) {
    link.set_tap([](const Bytes& frame, bool) -> std::optional<Bytes> {
        Bytes f = frame;
        f[12] ^= 0x01;  // Flip a payload bit.
        return f;
    });
    alice->send(to_bytes("hello"));
    const auto got = bob->poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->status, net::RecvStatus::kBadTag);
    EXPECT_TRUE(got->payload.empty());
    EXPECT_EQ(bob->rejected_tag(), 1u);
}

TEST_F(ChannelFixture, ReplayRejected) {
    Bytes captured;
    link.set_tap([&](const Bytes& frame, bool) -> std::optional<Bytes> {
        captured = frame;
        return frame;
    });
    alice->send(to_bytes("cmd"));
    ASSERT_EQ(bob->poll()->status, net::RecvStatus::kOk);

    // Attacker replays the captured frame.
    link.inject(captured, /*to_a=*/false);
    const auto got = bob->poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->status, net::RecvStatus::kReplay);
    EXPECT_EQ(bob->rejected_replay(), 1u);
}

TEST_F(ChannelFixture, ForgedFrameRejected) {
    link.inject(to_bytes("garbage-frame-without-valid-structure-or-tag....."),
                false);
    const auto got = bob->poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_NE(got->status, net::RecvStatus::kOk);
}

TEST_F(ChannelFixture, ShortFrameMalformed) {
    link.inject(Bytes{1, 2, 3}, false);
    const auto got = bob->poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->status, net::RecvStatus::kMalformed);
    EXPECT_EQ(bob->rejected_malformed(), 1u);
}

TEST_F(ChannelFixture, SequencesIncrease) {
    alice->send(to_bytes("a"));
    alice->send(to_bytes("b"));
    EXPECT_EQ(bob->poll()->sequence, 1u);
    EXPECT_EQ(bob->poll()->sequence, 2u);
}

TEST_F(ChannelFixture, WrongKeyPeerRejectsEverything) {
    net::SecureChannel mallory(nic_b, to_bytes("wrong-key"));
    alice->send(to_bytes("secret"));
    const auto got = mallory.poll();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->status, net::RecvStatus::kBadTag);
}

TEST(Channel, EmptyKeyRejected) {
    dev::Nic nic("n");
    EXPECT_THROW(net::SecureChannel(nic, Bytes{}), NetError);
}

TEST(AttestationWire, ChallengeRoundTrip) {
    const Bytes wire = net::encode_challenge(to_bytes("nonce"));
    const auto nonce = net::decode_challenge(wire);
    ASSERT_TRUE(nonce.has_value());
    EXPECT_EQ(*nonce, to_bytes("nonce"));
    EXPECT_FALSE(net::decode_challenge(to_bytes("junk")).has_value());
}

TEST(AttestationWire, QuoteRoundTrip) {
    tee::Quote q;
    q.composite.fill(7);
    q.nonce = to_bytes("n");
    q.tag.fill(9);
    const auto back = net::decode_quote(net::encode_quote(q));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->composite, q.composite);
    EXPECT_EQ(back->nonce, q.nonce);
    EXPECT_EQ(back->tag, q.tag);
    EXPECT_FALSE(net::decode_quote(Bytes{1, 2}).has_value());
}

class AttestationFixture : public ::testing::Test {
protected:
    AttestationFixture() : secure_ram("tee_ram", 0x1000) {
        bus.map(mem::RegionConfig{"tee_ram", 0x5000'0000, 0x1000, true, false},
                secure_ram);
        device_tee = std::make_unique<tee::Tee>(bus, 0x5000'0000, 0x1000);
        device_tee->provision_key("attest", to_bytes("attest-key"));

        crypto::Hash256 fw;
        fw.fill(0x42);
        pcrs.extend(boot::PcrBank::kPcrFirmware, fw);

        verifier = std::make_unique<net::AttestationVerifier>(
            pcrs.composite(), to_bytes("attest-key"), 123);
    }

    /// Device-side handling of a challenge.
    Bytes respond(BytesView challenge_wire) {
        const auto nonce = net::decode_challenge(challenge_wire);
        const auto quote = device_tee->quote(pcrs, *nonce, "attest");
        return net::encode_quote(*quote);
    }

    mem::Bus bus;
    mem::Ram secure_ram;
    std::unique_ptr<tee::Tee> device_tee;
    boot::PcrBank pcrs;
    std::unique_ptr<net::AttestationVerifier> verifier;
};

TEST_F(AttestationFixture, HealthyDeviceTrusted) {
    const Bytes challenge = verifier->challenge();
    EXPECT_EQ(verifier->verify(respond(challenge)),
              net::AttestResult::kTrusted);
    EXPECT_EQ(verifier->attestations_passed(), 1u);
}

TEST_F(AttestationFixture, ModifiedFirmwareDetected) {
    const Bytes challenge = verifier->challenge();
    crypto::Hash256 evil;
    evil.fill(0x66);
    pcrs.extend(boot::PcrBank::kPcrFirmware, evil);  // Implant measured.
    EXPECT_EQ(verifier->verify(respond(challenge)),
              net::AttestResult::kWrongMeasurement);
}

TEST_F(AttestationFixture, ReplayedQuoteStale) {
    const Bytes challenge = verifier->challenge();
    const Bytes response = respond(challenge);
    EXPECT_EQ(verifier->verify(response), net::AttestResult::kTrusted);
    EXPECT_EQ(verifier->verify(response), net::AttestResult::kStaleNonce);
}

TEST_F(AttestationFixture, QuoteForOldChallengeStale) {
    const Bytes c1 = verifier->challenge();
    const Bytes r1 = respond(c1);
    (void)verifier->challenge();  // New challenge supersedes.
    EXPECT_EQ(verifier->verify(r1), net::AttestResult::kStaleNonce);
}

TEST_F(AttestationFixture, ForgedTagRejected) {
    const Bytes challenge = verifier->challenge();
    Bytes response = respond(challenge);
    response[response.size() - 1] ^= 1;  // Corrupt tag.
    EXPECT_EQ(verifier->verify(response), net::AttestResult::kBadTag);
    EXPECT_EQ(verifier->attestations_failed(), 1u);
}

TEST_F(AttestationFixture, GarbageMalformed) {
    (void)verifier->challenge();
    EXPECT_EQ(verifier->verify(to_bytes("junk")),
              net::AttestResult::kMalformed);
}

}  // namespace
}  // namespace cres
