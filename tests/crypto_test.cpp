// Crypto primitives tested against published vectors: SHA-256 (FIPS 180-4),
// HMAC-SHA256 (RFC 4231), HKDF (RFC 5869), AES-128 (FIPS 197 / SP 800-38A),
// ChaCha20 (RFC 8439), plus key store and monotonic counter behaviour.
#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/keystore.h"
#include "crypto/monotonic.h"
#include "crypto/sha256.h"
#include "util/error.h"

namespace cres::crypto {
namespace {

std::string hex(const Hash256& h) { return to_hex(h); }

TEST(Sha256, EmptyString) {
    EXPECT_EQ(hex(sha256({})),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(hex(sha256(to_bytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(hex(sha256(to_bytes(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
    Sha256 h;
    const Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(hex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
    const Bytes data = to_bytes("The quick brown fox jumps over the lazy dog");
    for (std::size_t split = 0; split <= data.size(); ++split) {
        Sha256 h;
        h.update(BytesView(data).subspan(0, split));
        h.update(BytesView(data).subspan(split));
        EXPECT_EQ(h.finish(), sha256(data)) << "split=" << split;
    }
}

TEST(Sha256, ExactBlockBoundaries) {
    // 55/56/63/64/65 bytes exercise every padding branch.
    for (std::size_t n : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
        const Bytes data(n, 0x5a);
        Sha256 h;
        h.update(data);
        EXPECT_EQ(h.finish(), sha256(data)) << "n=" << n;
    }
}

// Explicit digests (hashlib references) for the padding boundary
// lengths, so a backend that is merely *self*-consistent still fails.
TEST(Sha256, BoundaryLengthKats) {
    const std::pair<std::size_t, const char*> vectors[] = {
        {55, "5f25f149aa92e3e13093aed8216072fae623f35e26ca605b6cce17e04b7ccf44"},
        {56, "301c69927f1603720c9f847b7e5e3bef77a7b9f75344490fe9039f13c36b842a"},
        {63, "939765b120205cbedae2ed31256b1967c38b6bdd9b0220535224cbc0b906d333"},
        {64, "cc7321cce5e4409bd8077d58422e1214969059bbd40b4eeb0de0a642f40f7282"},
        {65, "b8de0db62b6c87db61345504a8038bf973d987e8d2111abd8beb407c0bf3d9db"},
    };
    for (const auto& [n, digest] : vectors) {
        EXPECT_EQ(hex(sha256(Bytes(n, 0x5a))), digest) << "n=" << n;
    }
}

// Multi-block inputs drive the whole-blocks fast path that compresses
// straight from the caller's buffer (2, 3 and 15+ block messages).
TEST(Sha256, MultiBlockKats) {
    const std::pair<std::size_t, const char*> vectors[] = {
        {119, "a96851d641310ce032ff832b6f08125878deed2a825fe515dd1ba414afe95f7e"},
        {120, "60ec7f280e45d0c7bf77b70ff16958b1c1701a9fb7faa12b798207cf120ec6ee"},
        {128, "349d65e9ba1de7b0a13f9a3eadcc5b0202f15d6008fe9477f2a7b80f6194b20f"},
        {192, "707e97e6f8645df5d806382e6701c8e2e2166017f60a56e6aac0c2d2dbbb2281"},
        {1000, "8fe15844cfeedd35f5dc30a9fa5ed38afd849dbe4f8dcae5642d934be0afb13d"},
    };
    for (const auto& [n, digest] : vectors) {
        EXPECT_EQ(hex(sha256(Bytes(n, 0x5a))), digest) << "n=" << n;
        // Also feed the same message byte-at-a-time through the
        // buffered slow path; both paths must agree with the vector.
        Sha256 h;
        const Bytes data(n, 0x5a);
        for (std::size_t i = 0; i < n; ++i) {
            h.update(BytesView(data.data() + i, 1));
        }
        EXPECT_EQ(hex(h.finish()), digest) << "bytewise n=" << n;
    }
}

TEST(Sha256, SaveRestoreStateRoundTrip) {
    const Bytes head = to_bytes("The quick brown fox ");
    const Bytes tail = to_bytes("jumps over the lazy dog");
    Bytes all = head;
    all.insert(all.end(), tail.begin(), tail.end());

    Sha256 h;
    h.update(head);
    const Sha256::State mid = h.save_state();

    // The saved midstate can be resumed in a different hasher...
    Sha256 other;
    other.update(to_bytes("unrelated garbage"));
    other.restore_state(mid);
    other.update(tail);
    EXPECT_EQ(other.finish(), sha256(all));

    // ...and re-restored into the original any number of times.
    h.restore_state(mid);
    h.update(tail);
    EXPECT_EQ(h.finish(), sha256(all));
}

TEST(Sha256, SaveStateAtBlockBoundary) {
    const Bytes block(64, 0xab);
    Sha256 h;
    h.update(block);
    const Sha256::State mid = h.save_state();
    Sha256 resumed;
    resumed.restore_state(mid);
    resumed.update(block);
    EXPECT_EQ(resumed.finish(), sha256(Bytes(128, 0xab)));
}

TEST(Sha256, BackendNameIsKnown) {
    const std::string backend = sha256_backend();
    EXPECT_TRUE(backend == "portable" || backend == "sha-ni") << backend;
}

TEST(Sha256, ResetRestoresInitialState) {
    Sha256 h;
    h.update(to_bytes("garbage"));
    (void)h.finish();
    h.reset();
    h.update(to_bytes("abc"));
    EXPECT_EQ(hex(h.finish()),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, PairMatchesConcat) {
    const Bytes a = to_bytes("hello ");
    const Bytes b = to_bytes("world");
    EXPECT_EQ(sha256_pair(a, b), sha256(to_bytes("hello world")));
}

TEST(HashFromBytes, RejectsWrongSize) {
    EXPECT_THROW(hash_from_bytes(Bytes(31, 0)), CryptoError);
    EXPECT_THROW(hash_from_bytes(Bytes(33, 0)), CryptoError);
    EXPECT_NO_THROW(hash_from_bytes(Bytes(32, 0)));
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
    const Bytes key(20, 0x0b);
    const Bytes msg = to_bytes("Hi There");
    EXPECT_EQ(hex(hmac_sha256(key, msg)),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2) {
    const Bytes key = to_bytes("Jefe");
    const Bytes msg = to_bytes("what do ya want for nothing?");
    EXPECT_EQ(hex(hmac_sha256(key, msg)),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 20x 0xaa key, 50x 0xdd data.
TEST(Hmac, Rfc4231Case3) {
    const Bytes key(20, 0xaa);
    const Bytes msg(50, 0xdd);
    EXPECT_EQ(hex(hmac_sha256(key, msg)),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than one block.
TEST(Hmac, Rfc4231Case6LongKey) {
    const Bytes key(131, 0xaa);
    const Bytes msg = to_bytes("Test Using Larger Than Block-Size Key - Hash Key First");
    EXPECT_EQ(hex(hmac_sha256(key, msg)),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

// RFC 4231 test case 4: 25-byte incrementing key, 50x 0xcd data.
TEST(Hmac, Rfc4231Case4) {
    Bytes key(25);
    for (std::size_t i = 0; i < key.size(); ++i) {
        key[i] = static_cast<std::uint8_t>(i + 1);
    }
    const Bytes msg(50, 0xcd);
    EXPECT_EQ(hex(hmac_sha256(key, msg)),
              "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

// RFC 4231 test case 7: long key AND long data, through the keyed path.
TEST(HmacKeyed, Rfc4231Case7LongKeyLongData) {
    const Bytes key(131, 0xaa);
    const Bytes msg = to_bytes(
        "This is a test using a larger than block-size key and a larger "
        "than block-size data. The key needs to be hashed before being "
        "used by the HMAC algorithm.");
    const HmacSha256 keyed(key);
    EXPECT_EQ(hex(keyed.tag(msg)),
              "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

// A keyed object must be bit-identical to the one-shot function for
// every key-length class (short, block-sized, hashed-down long key).
TEST(HmacKeyed, MatchesOneShot) {
    for (const std::size_t key_len : {1u, 20u, 63u, 64u, 65u, 131u, 200u}) {
        const Bytes key(key_len, 0x7c);
        const HmacSha256 keyed(key);
        for (const std::size_t msg_len : {0u, 1u, 55u, 64u, 100u, 1000u}) {
            const Bytes msg(msg_len, 0x3d);
            EXPECT_EQ(keyed.tag(msg), hmac_sha256(key, msg))
                << "key_len=" << key_len << " msg_len=" << msg_len;
        }
    }
}

TEST(HmacKeyed, TagIsRepeatable) {
    const Bytes key = to_bytes("seal-key");
    const Bytes msg = to_bytes("evidence record");
    const HmacSha256 keyed(key);
    const Hash256 first = keyed.tag(msg);
    // The cached midstates are not consumed by use.
    EXPECT_EQ(keyed.tag(msg), first);
    EXPECT_EQ(keyed.tag(msg), first);
}

TEST(HmacKeyed, TagPairMatchesConcat) {
    const Bytes key = to_bytes("k");
    const Bytes a = to_bytes("previous block | ");
    const Bytes b = to_bytes("info tail");
    Bytes joined = a;
    joined.insert(joined.end(), b.begin(), b.end());
    const HmacSha256 keyed(key);
    EXPECT_EQ(keyed.tag_pair(a, b), hmac_sha256(key, joined));
}

TEST(HmacKeyed, VerifyAcceptsAndRejects) {
    const HmacSha256 keyed(to_bytes("k"));
    const Bytes msg = to_bytes("m");
    const Hash256 tag = keyed.tag(msg);
    EXPECT_TRUE(keyed.verify(msg, tag));
    Hash256 bad = tag;
    bad[0] ^= 1;
    EXPECT_FALSE(keyed.verify(msg, bad));
    EXPECT_FALSE(keyed.verify(to_bytes("m2"), tag));
    EXPECT_FALSE(keyed.verify(msg, BytesView(tag.data(), 31)));
}

TEST(HmacKeyed, SetKeyRekeys) {
    HmacSha256 keyed(to_bytes("old-key"));
    const Bytes msg = to_bytes("message");
    const Hash256 old_tag = keyed.tag(msg);
    keyed.set_key(to_bytes("new-key"));
    EXPECT_NE(keyed.tag(msg), old_tag);
    EXPECT_EQ(keyed.tag(msg), hmac_sha256(to_bytes("new-key"), msg));
}

TEST(Hmac, VerifyAcceptsAndRejects) {
    const Bytes key = to_bytes("k");
    const Bytes msg = to_bytes("m");
    const Hash256 tag = hmac_sha256(key, msg);
    EXPECT_TRUE(hmac_verify(key, msg, tag));
    Hash256 bad = tag;
    bad[0] ^= 1;
    EXPECT_FALSE(hmac_verify(key, msg, bad));
    EXPECT_FALSE(hmac_verify(key, to_bytes("m2"), tag));
}

// RFC 5869 test case 1.
TEST(Hkdf, Rfc5869Case1) {
    const Bytes ikm(22, 0x0b);
    const Bytes salt = from_hex("000102030405060708090a0b0c");
    const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
    const Hash256 prk = hkdf_extract(salt, ikm);
    EXPECT_EQ(hex(prk),
              "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5");
    const Bytes okm = hkdf_expand(prk, info, 42);
    EXPECT_EQ(to_hex(okm),
              "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
              "34007208d5b887185865");
}

TEST(Hkdf, ExpandRejectsTooLong) {
    const Hash256 prk{};
    EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), CryptoError);
}

TEST(Hkdf, LabelsProduceIndependentKeys) {
    const Bytes ikm = to_bytes("device-root-secret");
    const Bytes salt = to_bytes("salt");
    const Bytes k1 = hkdf(ikm, salt, "attestation", 32);
    const Bytes k2 = hkdf(ikm, salt, "evidence-seal", 32);
    EXPECT_NE(k1, k2);
    EXPECT_EQ(k1, hkdf(ikm, salt, "attestation", 32));
}

// FIPS 197 Appendix B.
TEST(Aes128, Fips197Block) {
    const Aes128Key key =
        aes_key_from_bytes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    const Aes128 aes(key);
    Aes128Block block;
    const Bytes pt = from_hex("3243f6a8885a308d313198a2e0370734");
    std::copy(pt.begin(), pt.end(), block.begin());
    aes.encrypt_block(block);
    EXPECT_EQ(to_hex(block), "3925841d02dc09fbdc118597196a0b32");
    aes.decrypt_block(block);
    EXPECT_EQ(Bytes(block.begin(), block.end()), pt);
}

// NIST SP 800-38A F.1.1 (ECB-AES128 block 1).
TEST(Aes128, Sp80038aEcbVector) {
    const Aes128Key key =
        aes_key_from_bytes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    const Aes128 aes(key);
    Aes128Block block;
    const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
    std::copy(pt.begin(), pt.end(), block.begin());
    aes.encrypt_block(block);
    EXPECT_EQ(to_hex(block), "3ad77bb40d7a3660a89ecaf32466ef97");
}

// NIST SP 800-38A F.2.1 (CBC-AES128, first block).
TEST(Aes128, Sp80038aCbcFirstBlock) {
    const Aes128Key key =
        aes_key_from_bytes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    const Aes128 aes(key);
    Aes128Block iv;
    const Bytes iv_bytes = from_hex("000102030405060708090a0b0c0d0e0f");
    std::copy(iv_bytes.begin(), iv_bytes.end(), iv.begin());
    const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
    const Bytes ct = aes.cbc_encrypt(pt, iv);
    // First 16 bytes must match the NIST vector; the rest is padding.
    ASSERT_GE(ct.size(), 16u);
    EXPECT_EQ(to_hex(BytesView(ct).subspan(0, 16)),
              "7649abac8119b246cee98e9b12e9197d");
    EXPECT_EQ(aes.cbc_decrypt(ct, iv), pt);
}

// NIST SP 800-38A F.5.1 (CTR-AES128, first block).
TEST(Aes128, Sp80038aCtrVector) {
    const Aes128Key key =
        aes_key_from_bytes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    const Aes128 aes(key);
    Aes128Block ctr;
    const Bytes ctr_bytes = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
    std::copy(ctr_bytes.begin(), ctr_bytes.end(), ctr.begin());
    const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
    const Bytes ct = aes.ctr_crypt(pt, ctr);
    EXPECT_EQ(to_hex(ct), "874d6191b620e3261bef6864990db6ce");
    EXPECT_EQ(aes.ctr_crypt(ct, ctr), pt);
}

TEST(Aes128, CbcRoundTripVariousLengths) {
    const Aes128Key key = aes_key_from_bytes(Bytes(16, 0x42));
    const Aes128 aes(key);
    const Aes128Block iv{};
    for (std::size_t n : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u}) {
        Bytes pt(n);
        for (std::size_t i = 0; i < n; ++i) pt[i] = static_cast<std::uint8_t>(i);
        const Bytes ct = aes.cbc_encrypt(pt, iv);
        EXPECT_EQ(ct.size() % 16, 0u);
        EXPECT_GE(ct.size(), pt.size() + 1);  // Always padded.
        EXPECT_EQ(aes.cbc_decrypt(ct, iv), pt) << "n=" << n;
    }
}

TEST(Aes128, CbcDecryptRejectsCorruption) {
    const Aes128Key key = aes_key_from_bytes(Bytes(16, 0x42));
    const Aes128 aes(key);
    const Aes128Block iv{};
    Bytes ct = aes.cbc_encrypt(to_bytes("attack at dawn"), iv);
    ct.back() ^= 0xff;
    EXPECT_THROW((void)aes.cbc_decrypt(ct, iv), CryptoError);
    EXPECT_THROW((void)aes.cbc_decrypt(Bytes(15, 0), iv), CryptoError);
    EXPECT_THROW((void)aes.cbc_decrypt(Bytes{}, iv), CryptoError);
}

TEST(Aes128, KeyFromBytesRejectsWrongSize) {
    EXPECT_THROW(aes_key_from_bytes(Bytes(15, 0)), CryptoError);
    EXPECT_THROW(aes_key_from_bytes(Bytes(17, 0)), CryptoError);
}

// RFC 8439 section 2.3.2 block function test vector.
TEST(ChaCha20, Rfc8439BlockVector) {
    ChaChaKey key;
    for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(i);
    ChaChaNonce nonce{};
    const Bytes nonce_bytes = from_hex("000000090000004a00000000");
    std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
    const auto block = chacha20_block(key, 1, nonce);
    EXPECT_EQ(to_hex(BytesView(block.data(), 16)),
              "10f1e7e4d13b5915500fdd1fa32071c4");
}

// RFC 8439 section 2.4.2 encryption test vector.
TEST(ChaCha20, Rfc8439EncryptVector) {
    ChaChaKey key;
    for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(i);
    ChaChaNonce nonce{};
    const Bytes nonce_bytes = from_hex("000000000000004a00000000");
    std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());
    const Bytes pt = to_bytes(
        "Ladies and Gentlemen of the class of '99: If I could offer you "
        "only one tip for the future, sunscreen would be it.");
    const Bytes ct = chacha20_crypt(key, nonce, 1, pt);
    EXPECT_EQ(to_hex(BytesView(ct).subspan(0, 16)),
              "6e2e359a2568f98041ba0728dd0d6981");
    EXPECT_EQ(chacha20_crypt(key, nonce, 1, ct), pt);
}

TEST(ChaChaDrbg, DeterministicFromSeed) {
    ChaChaDrbg a(to_bytes("seed"));
    ChaChaDrbg b(to_bytes("seed"));
    EXPECT_EQ(a.generate(64), b.generate(64));
}

TEST(ChaChaDrbg, OutputsDiffer) {
    ChaChaDrbg drbg(to_bytes("seed"));
    const Bytes first = drbg.generate(32);
    const Bytes second = drbg.generate(32);
    EXPECT_NE(first, second);
}

TEST(ChaChaDrbg, ReseedChangesStream) {
    ChaChaDrbg a(to_bytes("seed"));
    ChaChaDrbg b(to_bytes("seed"));
    b.reseed(to_bytes("extra entropy"));
    EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(KeyStore, InstallAndRead) {
    KeyStore ks;
    ks.install("root", to_bytes("secret"), KeyAccess::kAny);
    const auto got = ks.read("root", KeyRequester::kNormal);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, to_bytes("secret"));
}

TEST(KeyStore, AccessControl) {
    KeyStore ks;
    ks.install("boot", to_bytes("b"), KeyAccess::kSecureOnly);
    ks.install("ssm", to_bytes("s"), KeyAccess::kSsmOnly);

    EXPECT_FALSE(ks.read("boot", KeyRequester::kNormal).has_value());
    EXPECT_TRUE(ks.read("boot", KeyRequester::kSecure).has_value());
    EXPECT_TRUE(ks.read("boot", KeyRequester::kSsm).has_value());

    EXPECT_FALSE(ks.read("ssm", KeyRequester::kNormal).has_value());
    EXPECT_FALSE(ks.read("ssm", KeyRequester::kSecure).has_value());
    EXPECT_TRUE(ks.read("ssm", KeyRequester::kSsm).has_value());

    EXPECT_EQ(ks.denied_reads(), 3u);
}

TEST(KeyStore, ZeroiseRemovesMaterial) {
    KeyStore ks;
    ks.install("k", to_bytes("material"), KeyAccess::kAny);
    EXPECT_TRUE(ks.zeroise("k"));
    EXPECT_FALSE(ks.read("k", KeyRequester::kSsm).has_value());
    EXPECT_FALSE(ks.contains("k"));
    EXPECT_FALSE(ks.zeroise("k"));  // Already gone.
}

TEST(KeyStore, ZeroiseAll) {
    KeyStore ks;
    ks.install("a", to_bytes("1"), KeyAccess::kAny);
    ks.install("b", to_bytes("2"), KeyAccess::kSsmOnly);
    EXPECT_EQ(ks.live_count(), 2u);
    EXPECT_EQ(ks.zeroise_all(), 2u);
    EXPECT_EQ(ks.live_count(), 0u);
    EXPECT_EQ(ks.zeroise_all(), 0u);
}

TEST(KeyStore, MissingKeyReads) {
    KeyStore ks;
    EXPECT_FALSE(ks.read("nope", KeyRequester::kSsm).has_value());
    EXPECT_FALSE(ks.contains("nope"));
}

TEST(MonotonicCounter, NeverRegresses) {
    MonotonicCounterBank bank;
    EXPECT_EQ(bank.value("fw"), 0u);
    EXPECT_TRUE(bank.advance("fw", 5));
    EXPECT_EQ(bank.value("fw"), 5u);
    EXPECT_FALSE(bank.advance("fw", 3));
    EXPECT_EQ(bank.value("fw"), 5u);
    EXPECT_EQ(bank.tamper_attempts(), 1u);
    EXPECT_TRUE(bank.advance("fw", 5));  // Equal is allowed.
}

TEST(MonotonicCounter, Increment) {
    MonotonicCounterBank bank;
    EXPECT_EQ(bank.increment("boot"), 1u);
    EXPECT_EQ(bank.increment("boot"), 2u);
    EXPECT_EQ(bank.value("boot"), 2u);
}

TEST(MonotonicCounter, SerializeRoundTrip) {
    MonotonicCounterBank bank;
    bank.advance("fw", 7);
    bank.increment("boot");
    (void)bank.advance("fw", 1);  // Tamper attempt recorded.

    const Bytes blob = bank.serialize();
    const MonotonicCounterBank restored =
        MonotonicCounterBank::deserialize(blob);
    EXPECT_EQ(restored.value("fw"), 7u);
    EXPECT_EQ(restored.value("boot"), 1u);
    EXPECT_EQ(restored.tamper_attempts(), 1u);
}

}  // namespace
}  // namespace cres::crypto
