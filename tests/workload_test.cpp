// Workload, scenario plumbing and secure-boot-path integration tests.
#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "boot/image.h"
#include "platform/scenario.h"
#include "platform/workload.h"

namespace cres::platform {
namespace {

TEST(Workload, ControlLoopAssemblesWithExpectedSymbols) {
    const isa::Program p = control_loop_program();
    EXPECT_EQ(p.origin, kCodeBase);
    for (const char* sym :
         {"start", "loop", "process", "compute", "trap_handler", "delay"}) {
        EXPECT_NO_THROW((void)p.symbol(sym)) << sym;
    }
    EXPECT_GT(p.code.size(), 40u);
}

TEST(Workload, ControlLoopRunsStandalone) {
    NodeConfig config;
    config.resilient = false;
    Node node(config);
    const isa::Program p = control_loop_program();
    node.load_and_start(p);
    node.run(30000);
    EXPECT_GT(node.stats().control_iterations, 10u);
    EXPECT_GT(node.actuator.command_count(), 10u);
    // Commands track (setpoint - value) / 4 with value near setpoint.
    // The first iterations run before the sensor's first sample, so
    // only steady-state commands are bounded.
    const auto& history = node.actuator.history();
    for (std::size_t i = 3; i < history.size(); ++i) {
        EXPECT_LE(std::abs(history[i].applied), 5.0) << "i=" << i;
    }
}

TEST(Workload, TelemetryCanBeDisabled) {
    NodeConfig config;
    config.resilient = false;
    Node node(config);
    ControlLoopOptions options;
    options.send_telemetry = false;
    node.load_and_start(control_loop_program(options));
    node.run(30000);
    EXPECT_EQ(node.stats().telemetry_frames, 0u);
    EXPECT_GT(node.stats().control_iterations, 10u);
}

TEST(Workload, ConsoleServicePrintsToUart) {
    NodeConfig config;
    config.resilient = false;
    Node node(config);
    const isa::Program p = isa::assemble(R"(
        addi r1, r0, 72     ; 'H'
        ecall 2
        addi r1, r0, 105    ; 'i'
        ecall 2
        halt
    )",
                                         kCodeBase);
    node.load_and_start(p);
    node.run(100);
    EXPECT_EQ(node.uart.output(), "Hi");
}

TEST(Workload, GadgetAssembles) {
    const isa::Program g = exfil_gadget_program(gadget_origin());
    EXPECT_EQ(g.origin, gadget_origin());
    EXPECT_NO_THROW((void)g.symbol("gadget"));
    EXPECT_NO_THROW((void)g.symbol("exfil"));
    EXPECT_NO_THROW((void)g.symbol("spam"));
}

TEST(Workload, ChecksumProgramComputes) {
    NodeConfig config;
    config.resilient = false;
    Node node(config);
    // Plant a known buffer.
    Bytes buffer;
    for (int i = 0; i < 16; ++i) {
        buffer.push_back(static_cast<std::uint8_t>(i + 1));
        buffer.push_back(0);
        buffer.push_back(0);
        buffer.push_back(0);
    }
    node.app_ram.load(kDataBase - kAppRamBase, buffer);
    node.load_and_start(checksum_program(16));
    node.run(2000);
    EXPECT_TRUE(node.cpu.halted());
    EXPECT_EQ(node.cpu.reg(3), 136u);  // 1+2+...+16.
}

TEST(NodeLifecycle, SecureBootPathRunsSignedWorkload) {
    crypto::Hash256 seed{};
    seed.fill(3);
    crypto::MerkleSigner vendor(seed, 3);

    NodeConfig config;
    config.resilient = true;
    Node node(config);
    node.provision(vendor.public_key(), to_bytes("device-root-secret-0001"));

    // Package the control loop as a signed firmware image.
    const isa::Program program = control_loop_program();
    boot::FirmwareImage image;
    image.name = "control-fw";
    image.security_version = 1;
    image.load_addr = program.origin;
    image.entry_point = program.symbol("start");
    image.payload = program.code;
    boot::ImageSigner signer(vendor);
    signer.sign(image);

    const boot::BootReport report = node.secure_boot({image});
    ASSERT_TRUE(report.success) << report.summary();
    EXPECT_EQ(node.pcrs.log().size(), 1u);
    EXPECT_EQ(node.counters.value("fw_version"), 1u);

    node.arm_resilience(program);
    node.run(30000);
    EXPECT_GT(node.stats().control_iterations, 10u);
}

TEST(NodeLifecycle, SecureBootRejectsTamperedImage) {
    crypto::Hash256 seed{};
    seed.fill(4);
    crypto::MerkleSigner vendor(seed, 3);

    NodeConfig config;
    Node node(config);
    node.provision(vendor.public_key(), to_bytes("root"));

    const isa::Program program = control_loop_program();
    boot::FirmwareImage image;
    image.name = "fw";
    image.security_version = 1;
    image.load_addr = program.origin;
    image.entry_point = program.origin;
    image.payload = program.code;
    boot::ImageSigner signer(vendor);
    signer.sign(image);
    image.payload[0] ^= 1;  // Implant.

    const boot::BootReport report = node.secure_boot({image});
    EXPECT_FALSE(report.success);
    EXPECT_TRUE(node.cpu.halted());  // Nothing ran.
}

TEST(NodeLifecycle, RebootReloadsBootChain) {
    crypto::Hash256 seed{};
    seed.fill(5);
    crypto::MerkleSigner vendor(seed, 3);

    NodeConfig config;
    config.reboot_downtime = 1000;
    Node node(config);
    node.provision(vendor.public_key(), to_bytes("root"));

    const isa::Program program = control_loop_program();
    boot::FirmwareImage image;
    image.name = "fw";
    image.security_version = 1;
    image.load_addr = program.origin;
    image.entry_point = program.symbol("start");
    image.payload = program.code;
    boot::ImageSigner signer(vendor);
    signer.sign(image);
    ASSERT_TRUE(node.secure_boot({image}).success);

    node.run(5000);
    const auto before = node.stats().control_iterations;
    node.reboot("test");
    EXPECT_TRUE(node.cpu.halted());
    node.run(2000);  // Past the downtime: re-verified and restarted.
    node.run(8000);
    EXPECT_GT(node.stats().control_iterations, before);
    EXPECT_EQ(node.stats().reboots, 1u);
}

TEST(NodeLifecycle, LoadBelowAppRamRejected) {
    Node node(NodeConfig{});
    const isa::Program bad = isa::assemble("halt\n", 0x100);
    EXPECT_THROW(node.load_and_start(bad), PlatformError);
}

TEST(NodeLifecycle, SecureBootWithoutProvisionRejected) {
    Node node(NodeConfig{});
    EXPECT_THROW((void)node.secure_boot({}), PlatformError);
}

TEST(ScenarioPlumbing, SecretsArePlanted) {
    ScenarioConfig config;
    config.node.resilient = false;
    Scenario scenario(config);
    ASSERT_EQ(scenario.secrets().size(), 2u);
    // The app secret actually sits at kSecretBase.
    const Bytes in_ram = scenario.node().app_ram.dump(
        kSecretBase - kAppRamBase, kSecretSize);
    EXPECT_EQ(in_ram, scenario.secrets()[0]);
}

TEST(ScenarioPlumbing, DistinctSeedsDistinctSecrets) {
    ScenarioConfig a, b;
    a.seed = 1;
    b.seed = 2;
    Scenario sa(a), sb(b);
    EXPECT_NE(sa.secrets()[0], sb.secrets()[0]);
}

TEST(ScenarioPlumbing, CleanRunsAreDeterministic) {
    auto run_once = [] {
        ScenarioConfig config;
        config.node.resilient = true;
        config.warmup = 10000;
        config.horizon = 50000;
        config.seed = 99;
        Scenario scenario(config);
        return scenario.run(nullptr);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.control_iterations, b.control_iterations);
    EXPECT_EQ(a.telemetry_frames, b.telemetry_frames);
    EXPECT_EQ(a.evidence_records, b.evidence_records);
}

TEST(ScenarioPlumbing, AttackRunsAreDeterministic) {
    auto run_once = [] {
        ScenarioConfig config;
        config.node.resilient = true;
        config.warmup = 10000;
        config.horizon = 60000;
        config.seed = 98;
        Scenario scenario(config);
        attack::StackSmashAttack attack;
        return scenario.run(&attack, 15000);
    };
    const auto a = run_once();
    const auto b = run_once();
    EXPECT_EQ(a.leaked_bytes, b.leaked_bytes);
    EXPECT_EQ(a.detection_latency, b.detection_latency);
    EXPECT_EQ(a.responses_executed, b.responses_executed);
}

}  // namespace
}  // namespace cres::platform
