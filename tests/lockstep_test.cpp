// Lockstep (process-pair) node tests: the shadow core tracks the
// primary through the real control workload via I/O replay; a
// single-event upset diverges the pair, the redundancy monitor flags
// it, and checkpoint restore + shadow resync re-converges.
#include <gtest/gtest.h>

#include "platform/scenario.h"

namespace cres::platform {
namespace {

ScenarioConfig lockstep_config() {
    ScenarioConfig config;
    config.node.name = "lockstep0";
    config.node.resilient = true;
    config.node.lockstep = true;
    config.warmup = 15000;
    config.horizon = 80000;
    config.seed = 57;
    return config;
}

TEST(Lockstep, CleanRunStaysConverged) {
    Scenario scenario(lockstep_config());
    const auto r = scenario.run(nullptr);
    auto& node = scenario.node();

    EXPECT_GT(r.control_iterations, 50u);
    ASSERT_TRUE(node.redundancy_monitor != nullptr);
    EXPECT_GT(node.redundancy_monitor->comparisons(), 100u);
    EXPECT_EQ(node.redundancy_monitor->divergences(), 0u);
    EXPECT_EQ(node.mirror->underflows(), 0u);
}

TEST(Lockstep, SingleEventUpsetDetectedAndRecovered) {
    Scenario scenario(lockstep_config());
    auto& node = scenario.node();

    // A bit flip lands in the primary core's register file mid-run.
    node.sim.schedule_at(30000, "seu", [&node] {
        node.cpu.set_reg(4, node.cpu.reg(4) ^ 0x0001'0000);
    });
    const auto r = scenario.run(nullptr);

    EXPECT_GE(node.redundancy_monitor->divergences(), 1u);
    EXPECT_TRUE(r.responded);  // restore-checkpoint fired.
    EXPECT_GE(node.recovery->restores(), 1u);
    // The pair re-converged after resync and service continued.
    EXPECT_GT(r.control_iterations, 50u);
}

TEST(Lockstep, ShadowHasNoPlantSideEffects) {
    Scenario scenario(lockstep_config());
    (void)scenario.run(nullptr);
    auto& node = scenario.node();
    // Actuator commands come from the primary only: command count
    // matches iterations (one per loop), not double.
    EXPECT_LE(node.actuator.command_count(),
              node.stats().control_iterations + 3);
}

TEST(Lockstep, ShadowFollowsPrimaryState) {
    Scenario scenario(lockstep_config());
    (void)scenario.run(nullptr);
    auto& node = scenario.node();
    // At quiescence the pair agrees on architectural state.
    EXPECT_EQ(node.cpu.pc(), node.shadow_cpu->pc());
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(node.cpu.reg(i), node.shadow_cpu->reg(i)) << "r" << i;
    }
}

TEST(Lockstep, DisabledByDefault) {
    ScenarioConfig config;
    config.node.resilient = true;
    Scenario scenario(config);
    EXPECT_EQ(scenario.node().shadow_cpu, nullptr);
    EXPECT_EQ(scenario.node().redundancy_monitor, nullptr);
}

}  // namespace
}  // namespace cres::platform
