// Hash-based signature tests: WOTS+ one-time signatures and the Merkle
// many-time scheme, including forgery-resistance properties.
#include <gtest/gtest.h>

#include "crypto/merkle.h"
#include "crypto/sha256.h"
#include "crypto/wots.h"
#include "util/error.h"
#include "util/rng.h"

namespace cres::crypto {
namespace {

Hash256 seed(std::uint8_t fill) {
    Hash256 s;
    s.fill(fill);
    return s;
}

TEST(Wots, SignVerifyRoundTrip) {
    const WotsKeyPair kp(seed(1), seed(2));
    const Bytes msg = to_bytes("firmware v1.0");
    const WotsSignature sig = kp.sign(msg);
    EXPECT_TRUE(wots_verify(sig, msg, kp.public_key(), seed(2)));
}

TEST(Wots, RejectsWrongMessage) {
    const WotsKeyPair kp(seed(1), seed(2));
    const WotsSignature sig = kp.sign(to_bytes("firmware v1.0"));
    EXPECT_FALSE(wots_verify(sig, to_bytes("firmware v1.1"), kp.public_key(),
                             seed(2)));
}

TEST(Wots, RejectsWrongPublicKey) {
    const WotsKeyPair kp(seed(1), seed(2));
    const WotsKeyPair other(seed(3), seed(2));
    const Bytes msg = to_bytes("m");
    const WotsSignature sig = kp.sign(msg);
    EXPECT_FALSE(wots_verify(sig, msg, other.public_key(), seed(2)));
}

TEST(Wots, RejectsWrongPubSeed) {
    const WotsKeyPair kp(seed(1), seed(2));
    const Bytes msg = to_bytes("m");
    const WotsSignature sig = kp.sign(msg);
    EXPECT_FALSE(wots_verify(sig, msg, kp.public_key(), seed(9)));
}

TEST(Wots, RejectsTamperedSignature) {
    const WotsKeyPair kp(seed(1), seed(2));
    const Bytes msg = to_bytes("m");
    WotsSignature sig = kp.sign(msg);
    sig.chains[10][0] ^= 1;
    EXPECT_FALSE(wots_verify(sig, msg, kp.public_key(), seed(2)));
}

TEST(Wots, RejectsMalformedSignature) {
    const WotsKeyPair kp(seed(1), seed(2));
    WotsSignature sig = kp.sign(to_bytes("m"));
    sig.chains.pop_back();
    EXPECT_FALSE(wots_verify(sig, to_bytes("m"), kp.public_key(), seed(2)));
}

TEST(Wots, SerializationRoundTrip) {
    const WotsKeyPair kp(seed(1), seed(2));
    const Bytes msg = to_bytes("serialize me");
    const WotsSignature sig = kp.sign(msg);
    const WotsSignature restored = WotsSignature::deserialize(sig.serialize());
    EXPECT_TRUE(wots_verify(restored, msg, kp.public_key(), seed(2)));
}

TEST(Wots, DeserializeRejectsBadShape) {
    Bytes garbage = {0x05, 0x00, 0x00, 0x00};  // Claims 5 chains.
    EXPECT_THROW(WotsSignature::deserialize(garbage), CryptoError);
}

TEST(Wots, DeterministicKeygen) {
    const WotsKeyPair a(seed(7), seed(8));
    const WotsKeyPair b(seed(7), seed(8));
    EXPECT_EQ(a.public_key(), b.public_key());
}

// Property sweep: many random messages all verify; mutated ones do not.
class WotsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WotsProperty, RandomMessagesVerifyAndMutationsFail) {
    Rng rng(GetParam());
    Hash256 sseed, pseed;
    rng.fill(sseed);
    rng.fill(pseed);
    const WotsKeyPair kp(sseed, pseed);

    Bytes msg = rng.bytes(1 + rng.uniform(200));
    const WotsSignature sig = kp.sign(msg);
    EXPECT_TRUE(wots_verify(sig, msg, kp.public_key(), pseed));

    Bytes mutated = msg;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.uniform(255));
    EXPECT_FALSE(wots_verify(sig, mutated, kp.public_key(), pseed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WotsProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Merkle, SignVerifyRoundTrip) {
    MerkleSigner signer(seed(1), 3);
    const Bytes msg = to_bytes("firmware image digest");
    const MerkleSignature sig = signer.sign(msg);
    EXPECT_TRUE(merkle_verify(sig, msg, signer.public_key()));
}

TEST(Merkle, AllLeavesUsable) {
    MerkleSigner signer(seed(2), 3);
    EXPECT_EQ(signer.remaining(), 8u);
    for (int i = 0; i < 8; ++i) {
        const Bytes msg = to_bytes("msg " + std::to_string(i));
        const MerkleSignature sig = signer.sign(msg);
        EXPECT_EQ(sig.leaf_index, static_cast<std::uint32_t>(i));
        EXPECT_TRUE(merkle_verify(sig, msg, signer.public_key()));
    }
    EXPECT_EQ(signer.remaining(), 0u);
}

TEST(Merkle, ExhaustionThrows) {
    MerkleSigner signer(seed(3), 1);
    (void)signer.sign(to_bytes("a"));
    (void)signer.sign(to_bytes("b"));
    EXPECT_THROW((void)signer.sign(to_bytes("c")), CryptoError);
}

TEST(Merkle, RejectsWrongMessage) {
    MerkleSigner signer(seed(4), 2);
    const MerkleSignature sig = signer.sign(to_bytes("v2"));
    EXPECT_FALSE(merkle_verify(sig, to_bytes("v3"), signer.public_key()));
}

TEST(Merkle, RejectsTamperedAuthPath) {
    MerkleSigner signer(seed(5), 3);
    const Bytes msg = to_bytes("m");
    MerkleSignature sig = signer.sign(msg);
    sig.auth_path[1][5] ^= 1;
    EXPECT_FALSE(merkle_verify(sig, msg, signer.public_key()));
}

TEST(Merkle, RejectsWrongLeafIndex) {
    MerkleSigner signer(seed(6), 3);
    const Bytes msg = to_bytes("m");
    MerkleSignature sig = signer.sign(msg);
    sig.leaf_index = 5;
    EXPECT_FALSE(merkle_verify(sig, msg, signer.public_key()));
}

TEST(Merkle, RejectsOutOfRangeLeafIndex) {
    MerkleSigner signer(seed(6), 3);
    const Bytes msg = to_bytes("m");
    MerkleSignature sig = signer.sign(msg);
    sig.leaf_index = 800;
    EXPECT_FALSE(merkle_verify(sig, msg, signer.public_key()));
}

TEST(Merkle, RejectsCrossKeySignature) {
    MerkleSigner a(seed(7), 2);
    MerkleSigner b(seed(8), 2);
    const Bytes msg = to_bytes("m");
    const MerkleSignature sig = a.sign(msg);
    EXPECT_FALSE(merkle_verify(sig, msg, b.public_key()));
}

TEST(Merkle, SerializationRoundTrip) {
    MerkleSigner signer(seed(9), 4);
    const Bytes msg = to_bytes("serialize");
    const MerkleSignature sig = signer.sign(msg);

    const MerkleSignature restored =
        MerkleSignature::deserialize(sig.serialize());
    const MerklePublicKey pk =
        MerklePublicKey::deserialize(signer.public_key().serialize());
    EXPECT_TRUE(merkle_verify(restored, msg, pk));
}

TEST(Merkle, InvalidHeightRejected) {
    EXPECT_THROW(MerkleSigner(seed(1), 0), CryptoError);
    EXPECT_THROW(MerkleSigner(seed(1), 21), CryptoError);
}

TEST(Merkle, DeterministicPublicKey) {
    MerkleSigner a(seed(10), 3);
    MerkleSigner b(seed(10), 3);
    EXPECT_EQ(a.public_key().root, b.public_key().root);
}

// Property sweep over tree heights.
class MerkleHeightProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MerkleHeightProperty, EveryLeafVerifiesAtThisHeight) {
    const std::uint32_t height = GetParam();
    MerkleSigner signer(seed(static_cast<std::uint8_t>(height)), height);
    Rng rng(height);
    const std::uint32_t leaves = 1u << height;
    for (std::uint32_t i = 0; i < leaves; ++i) {
        const Bytes msg = rng.bytes(32);
        const MerkleSignature sig = signer.sign(msg);
        ASSERT_TRUE(merkle_verify(sig, msg, signer.public_key()))
            << "height=" << height << " leaf=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Heights, MerkleHeightProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace cres::crypto
