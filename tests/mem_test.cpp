// Memory-subsystem tests: bus decode, security attributes, isolation,
// observers, RAM/ROM semantics, MPU permissions and W^X invariant.
#include <gtest/gtest.h>

#include "mem/bus.h"
#include "mem/mpu.h"
#include "mem/ram.h"
#include "util/error.h"

namespace cres::mem {
namespace {

BusAttr normal() { return BusAttr{Master::kCpu, false, false}; }
BusAttr secure_priv() { return BusAttr{Master::kCpu, true, true}; }

class Fixture : public ::testing::Test {
protected:
    Fixture()
        : ram("ram0", 0x1000),
          rom("rom0", 0x400, /*writable=*/false),
          secret("secret", 0x100) {
        bus.map(RegionConfig{"ram0", 0x2000'0000, 0x1000, false, false}, ram);
        bus.map(RegionConfig{"rom0", 0x0000'0000, 0x400, false, true}, rom);
        bus.map(RegionConfig{"secret", 0x3000'0000, 0x100, true, false},
                secret);
    }

    Bus bus;
    Ram ram;
    Ram rom;
    Ram secret;
};

TEST_F(Fixture, ReadWriteRoundTrip) {
    EXPECT_EQ(bus.write(0x2000'0010, 4, 0xdeadbeef, normal()),
              BusResponse::kOk);
    const auto got = bus.read(0x2000'0010, 4, normal());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, 0xdeadbeefu);
}

TEST_F(Fixture, LittleEndianSubwordAccess) {
    ASSERT_EQ(bus.write(0x2000'0000, 4, 0x04030201, normal()),
              BusResponse::kOk);
    EXPECT_EQ(*bus.read(0x2000'0000, 1, normal()), 0x01u);
    EXPECT_EQ(*bus.read(0x2000'0001, 1, normal()), 0x02u);
    EXPECT_EQ(*bus.read(0x2000'0002, 2, normal()), 0x0403u);
}

TEST_F(Fixture, DecodeErrorOnUnmappedAddress) {
    std::uint32_t io = 0;
    EXPECT_EQ(bus.access(BusOp::kRead, 0x9000'0000, 4, io, normal()),
              BusResponse::kDecodeError);
}

TEST_F(Fixture, DecodeErrorOnAddressWrap) {
    std::uint32_t io = 0;
    EXPECT_EQ(bus.access(BusOp::kRead, 0xffff'fffe, 4, io, normal()),
              BusResponse::kDecodeError);
}

TEST_F(Fixture, DecodeErrorOnRegionStraddle) {
    std::uint32_t io = 0;
    // Last byte of ram0 region +3 spills outside.
    EXPECT_EQ(bus.access(BusOp::kRead, 0x2000'0ffe, 4, io, normal()),
              BusResponse::kDecodeError);
}

TEST_F(Fixture, SecureRegionRejectsNonSecure) {
    std::uint32_t io = 0;
    EXPECT_EQ(bus.access(BusOp::kRead, 0x3000'0000, 4, io, normal()),
              BusResponse::kSecurityViolation);
    EXPECT_EQ(bus.access(BusOp::kRead, 0x3000'0000, 4, io, secure_priv()),
              BusResponse::kOk);
}

TEST_F(Fixture, RomRejectsWrites) {
    EXPECT_EQ(bus.write(0x0000'0000, 4, 1, secure_priv()),
              BusResponse::kReadOnly);
}

TEST_F(Fixture, IsolationFencesRegion) {
    EXPECT_TRUE(bus.isolate_region("ram0"));
    std::uint32_t io = 0;
    EXPECT_EQ(bus.access(BusOp::kRead, 0x2000'0000, 4, io, secure_priv()),
              BusResponse::kIsolated);
    EXPECT_TRUE(bus.is_isolated("ram0"));
    EXPECT_TRUE(bus.isolate_region("ram0", false));
    EXPECT_EQ(bus.access(BusOp::kRead, 0x2000'0000, 4, io, secure_priv()),
              BusResponse::kOk);
}

TEST_F(Fixture, IsolateUnknownRegionFails) {
    EXPECT_FALSE(bus.isolate_region("nope"));
    EXPECT_FALSE(bus.is_isolated("nope"));
}

TEST_F(Fixture, SecureAttributeTampering) {
    // Models the [34] attack: clearing the secure attribute at runtime
    // exposes the region to non-secure masters.
    EXPECT_TRUE(bus.set_secure_only("secret", false));
    std::uint32_t io = 0;
    EXPECT_EQ(bus.access(BusOp::kRead, 0x3000'0000, 4, io, normal()),
              BusResponse::kOk);
}

TEST_F(Fixture, ObserverSeesTransactions) {
    struct Recorder : BusObserver {
        std::vector<BusTransaction> seen;
        void on_transaction(const BusTransaction& txn) override {
            seen.push_back(txn);
        }
    } recorder;

    bus.add_observer(&recorder);
    (void)bus.write(0x2000'0000, 4, 7, normal());
    std::uint32_t io = 0;
    (void)bus.access(BusOp::kRead, 0x3000'0000, 4, io, normal());
    bus.remove_observer(&recorder);
    (void)bus.write(0x2000'0000, 4, 8, normal());

    ASSERT_EQ(recorder.seen.size(), 2u);
    EXPECT_EQ(recorder.seen[0].op, BusOp::kWrite);
    EXPECT_EQ(recorder.seen[0].region, "ram0");
    EXPECT_EQ(recorder.seen[0].response, BusResponse::kOk);
    EXPECT_EQ(recorder.seen[1].response, BusResponse::kSecurityViolation);
    EXPECT_EQ(recorder.seen[1].region, "secret");
}

TEST_F(Fixture, BlockTransfers) {
    const Bytes data = {1, 2, 3, 4, 5};
    EXPECT_TRUE(bus.write_block(0x2000'0100, data, normal()));
    Bytes out(5);
    EXPECT_TRUE(bus.read_block(0x2000'0100, out, normal()));
    EXPECT_EQ(out, data);
}

TEST_F(Fixture, QuietBlockTransfersSkipObservers) {
    struct CountObserver : BusObserver {
        int count = 0;
        void on_transaction(const BusTransaction&) override { ++count; }
    } counter;
    bus.add_observer(&counter);

    const Bytes data = {1, 2, 3};
    EXPECT_TRUE(bus.write_block(0x2000'0200, data, normal(), /*quiet=*/true));
    Bytes out(3);
    EXPECT_TRUE(bus.read_block(0x2000'0200, out, normal(), /*quiet=*/true));
    EXPECT_EQ(counter.count, 0);
    EXPECT_EQ(out, data);
}

TEST_F(Fixture, QuietBlockHonoursProtections) {
    Bytes out(4);
    EXPECT_FALSE(bus.read_block(0x3000'0000, out, normal(), true));
    EXPECT_FALSE(bus.write_block(0x0000'0000, Bytes{1}, secure_priv(), true));
    bus.isolate_region("ram0");
    EXPECT_FALSE(bus.read_block(0x2000'0000, out, secure_priv(), true));
}

TEST_F(Fixture, TransactionCountTicks) {
    const auto before = bus.transaction_count();
    (void)bus.read(0x2000'0000, 4, normal());
    EXPECT_EQ(bus.transaction_count(), before + 1);
}

TEST(BusMap, RejectsOverlap) {
    Bus bus;
    Ram a("a", 0x100);
    Ram b("b", 0x100);
    bus.map(RegionConfig{"a", 0x1000, 0x100, false, false}, a);
    EXPECT_THROW(bus.map(RegionConfig{"b", 0x1080, 0x100, false, false}, b),
                 MemError);
}

TEST(BusMap, RejectsDuplicateName) {
    Bus bus;
    Ram a("a", 0x100);
    Ram b("b", 0x100);
    bus.map(RegionConfig{"a", 0x1000, 0x100, false, false}, a);
    EXPECT_THROW(bus.map(RegionConfig{"a", 0x2000, 0x100, false, false}, b),
                 MemError);
}

TEST(BusMap, RejectsZeroSize) {
    Bus bus;
    Ram a("a", 0x100);
    EXPECT_THROW(bus.map(RegionConfig{"a", 0x1000, 0, false, false}, a),
                 MemError);
}

TEST(BusMap, RegionsReportsMetadata) {
    Bus bus;
    Ram a("a", 0x100);
    bus.map(RegionConfig{"a", 0x1000, 0x100, true, false}, a);
    const auto regions = bus.regions();
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].name, "a");
    EXPECT_TRUE(regions[0].secure_only);
}

TEST(Ram, LoadAndDump) {
    Ram ram("r", 64);
    ram.load(8, Bytes{0xaa, 0xbb});
    EXPECT_EQ(ram.dump(8, 2), (Bytes{0xaa, 0xbb}));
    EXPECT_THROW(ram.load(63, Bytes{1, 2}), MemError);
    EXPECT_THROW((void)ram.dump(63, 2), MemError);
}

TEST(Ram, OutOfBoundsAccessIsDeviceError) {
    Ram ram("r", 8);
    std::uint32_t out = 0;
    EXPECT_EQ(ram.read(6, 4, out, BusAttr{}), BusResponse::kDeviceError);
    EXPECT_EQ(ram.write(8, 1, 0, BusAttr{}), BusResponse::kDeviceError);
}

TEST(Ram, FillScrubs) {
    Ram ram("r", 4);
    ram.load(0, Bytes{1, 2, 3, 4});
    ram.fill(0);
    EXPECT_EQ(ram.dump(0, 4), (Bytes{0, 0, 0, 0}));
}

TEST(Ram, ZeroSizeRejected) {
    EXPECT_THROW(Ram("r", 0), MemError);
}

TEST(RamPaging, UntouchedRamHasNoResidentPages) {
    Ram ram("r", 64 * 1024);
    EXPECT_EQ(ram.resident_pages(), 0u);
    EXPECT_EQ(ram.dump(0, 16), Bytes(16, 0));  // Reads don't materialize.
    EXPECT_EQ(ram.resident_pages(), 0u);
}

TEST(RamPaging, WriteMaterializesOnlyTouchedPages) {
    Ram ram("r", 64 * 1024);
    EXPECT_EQ(ram.write(5 * Ram::kPageSize + 8, 4, 0xdeadbeef, BusAttr{}),
              BusResponse::kOk);
    EXPECT_EQ(ram.resident_pages(), 1u);
    std::uint32_t out = 0;
    EXPECT_EQ(ram.read(5 * Ram::kPageSize + 8, 4, out, BusAttr{}),
              BusResponse::kOk);
    EXPECT_EQ(out, 0xdeadbeefu);
    // Other pages still read as background without materializing.
    EXPECT_EQ(ram.dump(0, 4), Bytes(4, 0));
    EXPECT_EQ(ram.resident_pages(), 1u);
}

TEST(RamPaging, SharedBackingSuppliesReadsCopyOnWrite) {
    auto image = std::make_shared<const Bytes>(Bytes{10, 20, 30, 40});
    Ram a("a", 2 * Ram::kPageSize);
    Ram b("b", 2 * Ram::kPageSize);
    a.set_backing(image, 100);
    b.set_backing(image, 100);
    EXPECT_TRUE(a.has_backing());
    EXPECT_EQ(a.resident_pages(), 0u);
    EXPECT_EQ(a.dump(100, 4), (Bytes{10, 20, 30, 40}));
    EXPECT_EQ(b.dump(100, 4), (Bytes{10, 20, 30, 40}));

    // A write to one node promotes only its own touched page.
    EXPECT_EQ(a.write(101, 1, 99, BusAttr{}), BusResponse::kOk);
    EXPECT_EQ(a.resident_pages(), 1u);
    EXPECT_EQ(a.dump(100, 4), (Bytes{10, 99, 30, 40}));
    EXPECT_EQ(b.resident_pages(), 0u);
    EXPECT_EQ(b.dump(100, 4), (Bytes{10, 20, 30, 40}));  // Unperturbed.
}

TEST(RamPaging, SetBackingHasReloadSemantics) {
    Ram ram("r", 2 * Ram::kPageSize);
    ram.load(0, Bytes{1, 2, 3, 4});  // Private page with stale content.
    auto image =
        std::make_shared<const Bytes>(Bytes(Ram::kPageSize, 0x5a));
    ram.set_backing(image, 0);
    // The fully covered page was dropped: the range reads as the image.
    EXPECT_EQ(ram.dump(0, 4), (Bytes{0x5a, 0x5a, 0x5a, 0x5a}));
    EXPECT_EQ(ram.resident_pages(), 0u);
    // Bytes past the image keep their background.
    EXPECT_EQ(ram.dump(Ram::kPageSize, 4), Bytes(4, 0));
}

TEST(RamPaging, SetBackingPatchesPartiallyCoveredPrivatePages) {
    Ram ram("r", 2 * Ram::kPageSize);
    // Private page with writes on both sides of the image range.
    ram.load(0, Bytes{0xaa});
    ram.load(8, Bytes{0xbb});
    auto image = std::make_shared<const Bytes>(Bytes{1, 2, 3, 4});
    ram.set_backing(image, 2);  // Covers [2, 6) — partial page.
    EXPECT_EQ(ram.dump(0, 9),
              (Bytes{0xaa, 0, 1, 2, 3, 4, 0, 0, 0xbb}));
}

TEST(RamPaging, MatchesComparesWithoutMaterializing) {
    auto image = std::make_shared<const Bytes>(Bytes{1, 2, 3, 4});
    Ram ram("r", Ram::kPageSize);
    ram.set_backing(image, 0);
    EXPECT_TRUE(ram.matches(0, *image));
    EXPECT_FALSE(ram.matches(1, *image));
    EXPECT_FALSE(ram.matches(Ram::kPageSize - 2, *image));  // Overruns.
    EXPECT_EQ(ram.resident_pages(), 0u);
    // Divergence after a private write is visible to matches().
    EXPECT_EQ(ram.write(2, 1, 9, BusAttr{}), BusResponse::kOk);
    EXPECT_FALSE(ram.matches(0, *image));
}

TEST(RamPaging, FillDropsPagesAndBacking) {
    auto image = std::make_shared<const Bytes>(Bytes{1, 2, 3, 4});
    Ram ram("r", Ram::kPageSize);
    ram.set_backing(image, 0);
    EXPECT_EQ(ram.write(100, 1, 7, BusAttr{}), BusResponse::kOk);
    ram.fill(0xee);
    EXPECT_FALSE(ram.has_backing());
    EXPECT_EQ(ram.resident_pages(), 0u);
    EXPECT_EQ(ram.dump(0, 2), (Bytes{0xee, 0xee}));
    EXPECT_EQ(ram.dump(100, 1), Bytes{0xee});
}

TEST(RamPaging, LoadOverBackingCreatesPrivateCopy) {
    auto image = std::make_shared<const Bytes>(Bytes{1, 2, 3, 4});
    Ram ram("r", Ram::kPageSize);
    ram.set_backing(image, 0);
    ram.load(0, Bytes{9, 9});
    EXPECT_EQ(ram.dump(0, 4), (Bytes{9, 9, 3, 4}));
    EXPECT_EQ(*image, (Bytes{1, 2, 3, 4}));  // Shared image untouched.
}

TEST(Mpu, DisabledAllowsEverything) {
    Mpu mpu;
    EXPECT_TRUE(mpu.check(0x1234, 4, AccessType::kWrite, false).allowed);
}

TEST(Mpu, EnforcesPermissions) {
    Mpu mpu;
    mpu.add_region(MpuRegion{"code", 0x0, 0x1000, true, false, true, true});
    mpu.add_region(MpuRegion{"data", 0x1000, 0x1000, true, true, false, true});
    mpu.set_enabled(true);

    EXPECT_TRUE(mpu.check(0x10, 4, AccessType::kExecute, false).allowed);
    EXPECT_FALSE(mpu.check(0x10, 4, AccessType::kWrite, false).allowed);
    EXPECT_TRUE(mpu.check(0x1000, 4, AccessType::kWrite, false).allowed);
    EXPECT_FALSE(mpu.check(0x1000, 4, AccessType::kExecute, false).allowed);
    EXPECT_FALSE(mpu.check(0x5000, 4, AccessType::kRead, false).allowed);
    EXPECT_EQ(mpu.fault_count(), 3u);
}

TEST(Mpu, PrivilegedOnlyRegions) {
    Mpu mpu;
    mpu.add_region(
        MpuRegion{"kernel", 0x0, 0x1000, true, true, false, /*user=*/false});
    mpu.set_enabled(true);
    EXPECT_TRUE(mpu.check(0x10, 4, AccessType::kRead, true).allowed);
    EXPECT_FALSE(mpu.check(0x10, 4, AccessType::kRead, false).allowed);
}

TEST(Mpu, WxViolationRejected) {
    Mpu mpu;
    EXPECT_THROW(mpu.add_region(MpuRegion{"bad", 0, 0x100, true, true, true,
                                          true}),
                 MemError);
}

TEST(Mpu, LockPreventsReconfiguration) {
    Mpu mpu;
    mpu.add_region(MpuRegion{"a", 0, 0x100, true, false, false, true});
    mpu.lock();
    EXPECT_THROW(
        mpu.add_region(MpuRegion{"b", 0x100, 0x100, true, false, false, true}),
        MemError);
    EXPECT_THROW(mpu.clear(), MemError);
    mpu.reset();
    EXPECT_FALSE(mpu.locked());
    EXPECT_TRUE(mpu.regions().empty());
}

TEST(Mpu, DecisionNamesRegion) {
    Mpu mpu;
    mpu.add_region(MpuRegion{"data", 0x100, 0x100, true, true, false, true});
    mpu.set_enabled(true);
    EXPECT_EQ(mpu.check(0x100, 4, AccessType::kRead, false).region, "data");
    EXPECT_EQ(mpu.check(0x900, 4, AccessType::kRead, false).region, "");
}

}  // namespace
}  // namespace cres::mem
