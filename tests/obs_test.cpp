// Observability subsystem: log2-bucket histogram KATs, span lifecycle,
// exposition formats (Prometheus golden file + JSON), deterministic
// merge, the structured log sink, and the end-to-end check that one
// attack scenario populates the CSF latency histograms.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "attack/attacks.h"
#include "obs/json_log.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "platform/scenario.h"

namespace cres::obs {
namespace {

// --- Histogram bucket boundaries (known-answer tests) -----------------------

TEST(Histogram, BucketIndexKats) {
    EXPECT_EQ(Histogram::bucket_index(0), 0u);
    EXPECT_EQ(Histogram::bucket_index(1), 1u);
    EXPECT_EQ(Histogram::bucket_index(2), 2u);
    EXPECT_EQ(Histogram::bucket_index(3), 2u);
    EXPECT_EQ(Histogram::bucket_index(4), 3u);
    EXPECT_EQ(Histogram::bucket_index(7), 3u);
    EXPECT_EQ(Histogram::bucket_index(8), 4u);
    EXPECT_EQ(Histogram::bucket_index(1023), 10u);
    EXPECT_EQ(Histogram::bucket_index(1024), 11u);
    EXPECT_EQ(Histogram::bucket_index(std::uint64_t{1} << 63), 64u);
    EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64u);
}

TEST(Histogram, BucketUpperKats) {
    EXPECT_EQ(Histogram::bucket_upper(0), 0u);
    EXPECT_EQ(Histogram::bucket_upper(1), 1u);
    EXPECT_EQ(Histogram::bucket_upper(2), 3u);
    EXPECT_EQ(Histogram::bucket_upper(3), 7u);
    EXPECT_EQ(Histogram::bucket_upper(10), 1023u);
    EXPECT_EQ(Histogram::bucket_upper(63),
              (std::uint64_t{1} << 63) - 1);
    EXPECT_EQ(Histogram::bucket_upper(64), ~std::uint64_t{0});
}

TEST(Histogram, EveryValueLandsInsideItsBucketBounds) {
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                            std::uint64_t{2}, std::uint64_t{100},
                            std::uint64_t{65535}, std::uint64_t{65536},
                            ~std::uint64_t{0}}) {
        const std::size_t i = Histogram::bucket_index(v);
        EXPECT_LE(v, Histogram::bucket_upper(i)) << v;
        if (i > 0) EXPECT_GT(v, Histogram::bucket_upper(i - 1)) << v;
    }
}

TEST(Histogram, RecordTracksCountSumMinMax) {
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);  // Empty histogram reports 0, not UINT64_MAX.
    h.record(5);
    h.record(0);
    h.record(1000);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 1005u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(10), 1u);
    EXPECT_EQ(h.highest_bucket(), 10u);
}

// --- Counter / gauge / registry --------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsStableReferences) {
    MetricsRegistry r;
    Counter& a = r.counter("a_total");
    a.inc(2);
    // Registering more metrics must not invalidate the reference.
    for (int i = 0; i < 100; ++i) {
        r.counter("filler_" + std::to_string(i) + "_total");
    }
    Counter& again = r.counter("a_total");
    EXPECT_EQ(&a, &again);
    EXPECT_EQ(a.value(), 2u);
}

TEST(MetricsRegistry, GaugeRemembersHighWaterMark) {
    MetricsRegistry r;
    Gauge& g = r.gauge("depth");
    g.set(7);
    g.set(3);
    EXPECT_EQ(g.value(), 3);
    EXPECT_EQ(g.max(), 7);
    g.add(-3);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.max(), 7);
}

TEST(MetricsRegistry, FindReturnsNullForUnregistered) {
    MetricsRegistry r;
    EXPECT_EQ(r.find_counter("nope"), nullptr);
    EXPECT_EQ(r.find_gauge("nope"), nullptr);
    EXPECT_EQ(r.find_histogram("nope"), nullptr);
    r.counter("yes_total").inc();
    ASSERT_NE(r.find_counter("yes_total"), nullptr);
    EXPECT_EQ(r.find_counter("yes_total")->value(), 1u);
}

TEST(MetricsRegistry, MergeSumsCountersAndBucketsTakesGaugeMax) {
    MetricsRegistry a;
    MetricsRegistry b;
    a.counter("c_total").inc(3);
    b.counter("c_total").inc(4);
    b.counter("only_b_total").inc(1);
    a.gauge("g").set(2);
    b.gauge("g").set(9);
    a.histogram("h").record(1);
    b.histogram("h").record(1000);

    a.merge_from(b);
    EXPECT_EQ(a.find_counter("c_total")->value(), 7u);
    EXPECT_EQ(a.find_counter("only_b_total")->value(), 1u);
    EXPECT_EQ(a.find_gauge("g")->value(), 11);  // Values sum (fleet load)...
    EXPECT_EQ(a.find_gauge("g")->max(), 9);     // ...high-water takes max.
    EXPECT_EQ(a.find_histogram("h")->count(), 2u);
    EXPECT_EQ(a.find_histogram("h")->sum(), 1001u);
    EXPECT_EQ(a.find_histogram("h")->min(), 1u);
    EXPECT_EQ(a.find_histogram("h")->max(), 1000u);
}

TEST(MetricsRegistry, MergeIsDeterministicForAGivenFoldOrder) {
    auto make = [](std::uint64_t salt) {
        MetricsRegistry r;
        r.counter("events_total").inc(salt);
        r.histogram("lat_cycles").record(salt * 17);
        r.gauge("depth").set(static_cast<std::int64_t>(salt));
        return r;
    };
    auto fold = [&make] {
        MetricsRegistry merged;
        for (std::uint64_t i = 0; i < 8; ++i) merged.merge_from(make(i));
        return merged.prometheus();
    };
    EXPECT_EQ(fold(), fold());
}

// --- Exposition formats -----------------------------------------------------

MetricsRegistry golden_registry() {
    MetricsRegistry r;
    r.counter("cres_demo_events_total").inc(3);
    r.counter("cres_monitor_polls_total{monitor=\"bus-monitor\"}").inc(7);
    r.counter("cres_monitor_polls_total{monitor=\"cfi-monitor\"}").inc(9);
    Gauge& g = r.gauge("cres_demo_queue_depth");
    g.set(4);
    g.set(2);
    Histogram& h = r.histogram("cres_demo_latency_cycles");
    h.record(0);
    h.record(1);
    h.record(5);
    h.record(1000);
    return r;
}

TEST(Exposition, PrometheusMatchesGoldenFile) {
    const std::string path =
        std::string(CRES_OBS_GOLDEN_DIR) + "/obs_exposition.golden";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path;
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden_registry().prometheus(), golden.str());
}

TEST(Exposition, TypeLinesAreDedupedAcrossLabelSets) {
    const std::string text = golden_registry().prometheus();
    std::size_t type_lines = 0;
    std::size_t pos = 0;
    while ((pos = text.find("# TYPE cres_monitor_polls_total", pos)) !=
           std::string::npos) {
        ++type_lines;
        ++pos;
    }
    EXPECT_EQ(type_lines, 1u);  // One TYPE line despite two label sets.
}

TEST(Exposition, EmptyHistogramEmitsOnlyInfBucket) {
    MetricsRegistry r;
    r.histogram("empty_cycles");
    const std::string text = r.prometheus();
    EXPECT_NE(text.find("empty_cycles_bucket{le=\"+Inf\"} 0"),
              std::string::npos);
    EXPECT_EQ(text.find("le=\"0\""), std::string::npos);
}

TEST(Exposition, JsonSnapshotHasAllThreeSections) {
    const std::string json = golden_registry().json();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"cres_demo_events_total\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"value\": 2, \"max\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 4, \"sum\": 1006"), std::string::npos);
    // Inline label quotes must be escaped into valid JSON keys.
    EXPECT_NE(json.find("{monitor=\\\"bus-monitor\\\"}"), std::string::npos);
}

// --- CSF span tracing -------------------------------------------------------

TEST(SpanTracer, FullLifecyclePopulatesEveryPhaseHistogram) {
    MetricsRegistry r;
    SpanTracer spans(r);
    const std::uint64_t id = spans.open(100);
    EXPECT_TRUE(spans.is_open(id));
    EXPECT_TRUE(spans.mark(id, CsfPhase::kDetect, 110));
    EXPECT_TRUE(spans.mark(id, CsfPhase::kRespond, 130));
    EXPECT_TRUE(spans.mark(id, CsfPhase::kContain, 150));
    EXPECT_TRUE(spans.close(id, 200));
    EXPECT_FALSE(spans.is_open(id));
    EXPECT_EQ(spans.open_spans(), 0u);
    EXPECT_EQ(spans.incidents_total(), 1u);

    EXPECT_EQ(r.find_histogram("cres_csf_detect_latency_cycles")->sum(), 10u);
    EXPECT_EQ(r.find_histogram("cres_csf_respond_latency_cycles")->sum(),
              30u);
    EXPECT_EQ(r.find_histogram("cres_csf_contain_latency_cycles")->sum(),
              50u);
    EXPECT_EQ(r.find_histogram("cres_csf_recover_latency_cycles")->sum(),
              100u);
    EXPECT_EQ(r.find_histogram("cres_csf_total_cycles")->sum(), 100u);
    EXPECT_EQ(r.find_counter("cres_csf_incidents_total")->value(), 1u);
    EXPECT_EQ(r.find_gauge("cres_csf_incidents_open")->value(), 0);
    EXPECT_EQ(r.find_gauge("cres_csf_incidents_open")->max(), 1);
}

TEST(SpanTracer, MarksAreIdempotentPerPhase) {
    MetricsRegistry r;
    SpanTracer spans(r);
    const std::uint64_t id = spans.open(0);
    EXPECT_TRUE(spans.mark(id, CsfPhase::kDetect, 10));
    EXPECT_FALSE(spans.mark(id, CsfPhase::kDetect, 999));  // First wins.
    EXPECT_EQ(r.find_histogram("cres_csf_detect_latency_cycles")->count(),
              1u);
    EXPECT_EQ(r.find_histogram("cres_csf_detect_latency_cycles")->sum(), 10u);
}

TEST(SpanTracer, UnknownAndClosedIdsAreRejected) {
    MetricsRegistry r;
    SpanTracer spans(r);
    EXPECT_FALSE(spans.mark(42, CsfPhase::kDetect, 1));
    EXPECT_FALSE(spans.close(42, 1));
    const std::uint64_t id = spans.open(0);
    EXPECT_TRUE(spans.close(id, 5));
    EXPECT_FALSE(spans.close(id, 9));  // Already retired.
    EXPECT_FALSE(spans.mark(id, CsfPhase::kContain, 9));
}

TEST(SpanTracer, OrphansStayOpenAndQueryable) {
    MetricsRegistry r;
    SpanTracer spans(r);
    const std::uint64_t a = spans.open(0);
    const std::uint64_t b = spans.open(10);
    (void)spans.close(b, 20);
    EXPECT_EQ(spans.open_spans(), 1u);  // `a` never recovered.
    EXPECT_TRUE(spans.is_open(a));
    EXPECT_EQ(r.find_gauge("cres_csf_incidents_open")->value(), 1);
    // The orphan is the "never recovered" signal: total_cycles saw only
    // the closed incident.
    EXPECT_EQ(r.find_histogram("cres_csf_total_cycles")->count(), 1u);
}

TEST(SpanTracer, CloseRecordsRecoverEvenWithoutExplicitMark) {
    MetricsRegistry r;
    SpanTracer spans(r);
    const std::uint64_t id = spans.open(100);
    EXPECT_TRUE(spans.close(id, 400));
    EXPECT_EQ(r.find_histogram("cres_csf_recover_latency_cycles")->sum(),
              300u);
}

// --- Structured log sink ----------------------------------------------------

TEST(JsonLogSink, EmitsOneJsonObjectPerLine) {
    std::ostringstream out;
    Logger& logger = Logger::instance();
    const LogLevel saved = logger.level();
    logger.set_level(LogLevel::kDebug);
    std::uint64_t cycle = 77;
    logger.set_sink(json_log_sink(out, [&cycle] { return cycle; }));
    log_warn("engine \"hot\"\n");
    cycle = 78;
    log_info("ok");
    logger.set_sink(nullptr);  // Restore stderr for other tests.
    logger.set_level(saved);

    EXPECT_EQ(out.str(),
              "{\"at\": 77, \"source\": \"log\", \"kind\": \"warn\", "
              "\"detail\": \"engine \\\"hot\\\"\\n\"}\n"
              "{\"at\": 78, \"source\": \"log\", \"kind\": \"info\", "
              "\"detail\": \"ok\"}\n");
}

// --- End to end: one attack populates the CSF lifecycle ---------------------

TEST(EndToEnd, StackSmashPopulatesCsfLatencyHistograms) {
    platform::ScenarioConfig config;
    config.node.name = "obs-e2e";
    config.node.resilient = true;
    config.warmup = 15000;
    config.horizon = 80000;
    config.seed = 81;
    platform::Scenario scenario(config);
    attack::StackSmashAttack attack;
    (void)scenario.run(&attack, 20000);

    const auto& metrics = scenario.node().metrics;

    // Monitors polled and the SSM processed events.
    const auto* cfi_polls = metrics.find_counter(
        "cres_monitor_polls_total{monitor=\"cfi-monitor\"}");
    ASSERT_NE(cfi_polls, nullptr);
    EXPECT_GT(cfi_polls->value(), 0u);
    const auto* events =
        metrics.find_counter("cres_ssm_events_processed_total");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->value(), 0u);
    EXPECT_EQ(events->value(), scenario.node().ssm->events_processed());

    // Detection latency is bounded by the SSM poll interval.
    const auto* detection =
        metrics.find_histogram("cres_ssm_detection_latency_cycles");
    ASSERT_NE(detection, nullptr);
    EXPECT_GT(detection->count(), 0u);
    EXPECT_LE(detection->max(), config.node.ssm_poll_interval);

    // The breach ran the full CSF lifecycle: detect -> respond ->
    // recover (checkpoint restore), so each latency histogram has at
    // least one incident in it, with sane ordering.
    const auto* detect =
        metrics.find_histogram("cres_csf_detect_latency_cycles");
    const auto* respond =
        metrics.find_histogram("cres_csf_respond_latency_cycles");
    const auto* recover =
        metrics.find_histogram("cres_csf_recover_latency_cycles");
    ASSERT_NE(detect, nullptr);
    ASSERT_NE(respond, nullptr);
    ASSERT_NE(recover, nullptr);
    EXPECT_GT(detect->count(), 0u);
    EXPECT_GT(respond->count(), 0u);
    EXPECT_GT(recover->count(), 0u);
    EXPECT_LE(detect->min(), respond->min());
    EXPECT_LE(respond->min(), recover->max());

    // Response actions were counted per action label.
    const auto* actions =
        metrics.find_counter("cres_response_actions_total");
    ASSERT_NE(actions, nullptr);
    EXPECT_EQ(actions->value(),
              scenario.node().response_manager->total());

    // And the snapshot formats render it all without blowing up.
    EXPECT_NE(metrics.prometheus().find("cres_csf_detect_latency_cycles"),
              std::string::npos);
    EXPECT_NE(metrics.json().find("cres_ssm_events_processed_total"),
              std::string::npos);
}

TEST(EndToEnd, UnboundRegistryStaysEmpty) {
    platform::ScenarioConfig config;
    config.node.name = "obs-off";
    config.node.resilient = true;
    config.node.metrics = false;  // Compiled in, never queried.
    config.warmup = 5000;
    config.horizon = 30000;
    config.seed = 81;
    platform::Scenario scenario(config);
    attack::StackSmashAttack attack;
    (void)scenario.run(&attack, 8000);
    EXPECT_EQ(scenario.node().metrics.size(), 0u);
    EXPECT_EQ(scenario.node().metrics.prometheus(), "");
}

}  // namespace
}  // namespace cres::obs
