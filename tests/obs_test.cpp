// Observability subsystem: log2-bucket histogram KATs, span lifecycle,
// exposition formats (Prometheus golden file + JSON), deterministic
// merge, the structured log sink, the flight-recorder ring, sealed
// postmortem bundles, the Chrome trace exporter (golden file), and the
// end-to-end check that one attack scenario populates the CSF latency
// histograms and seals a verifiable postmortem.
#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

#include "attack/attacks.h"
#include "core/monitor/monitor.h"
#include "crypto/hmac.h"
#include "obs/chrome_trace.h"
#include "obs/flight_recorder.h"
#include "obs/json_log.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/span.h"
#include "platform/scenario.h"
#include "sim/trace.h"

namespace cres::obs {
namespace {

// --- Histogram bucket boundaries (known-answer tests) -----------------------

TEST(Histogram, BucketIndexKats) {
    EXPECT_EQ(Histogram::bucket_index(0), 0u);
    EXPECT_EQ(Histogram::bucket_index(1), 1u);
    EXPECT_EQ(Histogram::bucket_index(2), 2u);
    EXPECT_EQ(Histogram::bucket_index(3), 2u);
    EXPECT_EQ(Histogram::bucket_index(4), 3u);
    EXPECT_EQ(Histogram::bucket_index(7), 3u);
    EXPECT_EQ(Histogram::bucket_index(8), 4u);
    EXPECT_EQ(Histogram::bucket_index(1023), 10u);
    EXPECT_EQ(Histogram::bucket_index(1024), 11u);
    EXPECT_EQ(Histogram::bucket_index(std::uint64_t{1} << 63), 64u);
    EXPECT_EQ(Histogram::bucket_index(~std::uint64_t{0}), 64u);
}

TEST(Histogram, BucketUpperKats) {
    EXPECT_EQ(Histogram::bucket_upper(0), 0u);
    EXPECT_EQ(Histogram::bucket_upper(1), 1u);
    EXPECT_EQ(Histogram::bucket_upper(2), 3u);
    EXPECT_EQ(Histogram::bucket_upper(3), 7u);
    EXPECT_EQ(Histogram::bucket_upper(10), 1023u);
    EXPECT_EQ(Histogram::bucket_upper(63),
              (std::uint64_t{1} << 63) - 1);
    EXPECT_EQ(Histogram::bucket_upper(64), ~std::uint64_t{0});
}

TEST(Histogram, EveryValueLandsInsideItsBucketBounds) {
    for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1},
                            std::uint64_t{2}, std::uint64_t{100},
                            std::uint64_t{65535}, std::uint64_t{65536},
                            ~std::uint64_t{0}}) {
        const std::size_t i = Histogram::bucket_index(v);
        EXPECT_LE(v, Histogram::bucket_upper(i)) << v;
        if (i > 0) {
            EXPECT_GT(v, Histogram::bucket_upper(i - 1)) << v;
        }
    }
}

TEST(Histogram, RecordTracksCountSumMinMax) {
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);  // Empty histogram reports 0, not UINT64_MAX.
    h.record(5);
    h.record(0);
    h.record(1000);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 1005u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(10), 1u);
    EXPECT_EQ(h.highest_bucket(), 10u);
}

// --- Quantile estimation (known-answer tests) -------------------------------
// Prometheus-style: locate the bucket covering rank q*n, interpolate
// linearly inside it, clamp to the observed [min, max].

TEST(Histogram, QuantileEmptyAndSingleSampleKats) {
    Histogram h;
    EXPECT_EQ(h.estimate_quantile(0.5), 0u);  // Empty histogram.
    h.record(100);
    // One sample: every quantile is that sample (the min/max clamp
    // overrides in-bucket interpolation).
    EXPECT_EQ(h.p50(), 100u);
    EXPECT_EQ(h.p95(), 100u);
    EXPECT_EQ(h.p99(), 100u);
}

TEST(Histogram, QuantileBucketBoundaryKats) {
    // 50 samples at 1 and 50 at 1024: p50 lands exactly on the upper
    // boundary of the le=1 bucket; the tail quantiles land in the
    // (1023, 2047] bucket, whose upper bound tightens to max()=1024.
    Histogram h;
    for (int i = 0; i < 50; ++i) h.record(1);
    for (int i = 0; i < 50; ++i) h.record(1024);
    EXPECT_EQ(h.p50(), 1u);
    EXPECT_EQ(h.p95(), 1023u);
    EXPECT_EQ(h.p99(), 1023u);
    EXPECT_EQ(h.estimate_quantile(0.0), 1u);     // Clamped to min().
    EXPECT_EQ(h.estimate_quantile(1.0), 1024u);  // Clamped to max().
}

TEST(Histogram, QuantileInterpolatesWithinOneBucket) {
    // All mass in (511, 1023]: interpolation sweeps the bucket span
    // monotonically with q.
    Histogram h;
    for (int i = 0; i < 100; ++i) h.record(512);
    for (int i = 0; i < 100; ++i) h.record(1000);
    const std::uint64_t p50 = h.p50();
    const std::uint64_t p95 = h.p95();
    EXPECT_GE(p50, 512u);
    EXPECT_LE(p95, 1000u);
    EXPECT_LE(p50, p95);
}

// --- Counter / gauge / registry --------------------------------------------

TEST(MetricsRegistry, GetOrCreateReturnsStableReferences) {
    MetricsRegistry r;
    Counter& a = r.counter("a_total");
    a.inc(2);
    // Registering more metrics must not invalidate the reference.
    for (int i = 0; i < 100; ++i) {
        r.counter("filler_" + std::to_string(i) + "_total");
    }
    Counter& again = r.counter("a_total");
    EXPECT_EQ(&a, &again);
    EXPECT_EQ(a.value(), 2u);
}

TEST(MetricsRegistry, GaugeRemembersHighWaterMark) {
    MetricsRegistry r;
    Gauge& g = r.gauge("depth");
    g.set(7);
    g.set(3);
    EXPECT_EQ(g.value(), 3);
    EXPECT_EQ(g.max(), 7);
    g.add(-3);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(g.max(), 7);
}

TEST(MetricsRegistry, FindReturnsNullForUnregistered) {
    MetricsRegistry r;
    EXPECT_EQ(r.find_counter("nope"), nullptr);
    EXPECT_EQ(r.find_gauge("nope"), nullptr);
    EXPECT_EQ(r.find_histogram("nope"), nullptr);
    r.counter("yes_total").inc();
    ASSERT_NE(r.find_counter("yes_total"), nullptr);
    EXPECT_EQ(r.find_counter("yes_total")->value(), 1u);
}

TEST(MetricsRegistry, MergeSumsCountersAndBucketsTakesGaugeMax) {
    MetricsRegistry a;
    MetricsRegistry b;
    a.counter("c_total").inc(3);
    b.counter("c_total").inc(4);
    b.counter("only_b_total").inc(1);
    a.gauge("g").set(2);
    b.gauge("g").set(9);
    a.histogram("h").record(1);
    b.histogram("h").record(1000);

    a.merge_from(b);
    EXPECT_EQ(a.find_counter("c_total")->value(), 7u);
    EXPECT_EQ(a.find_counter("only_b_total")->value(), 1u);
    EXPECT_EQ(a.find_gauge("g")->value(), 11);  // Values sum (fleet load)...
    EXPECT_EQ(a.find_gauge("g")->max(), 9);     // ...high-water takes max.
    EXPECT_EQ(a.find_histogram("h")->count(), 2u);
    EXPECT_EQ(a.find_histogram("h")->sum(), 1001u);
    EXPECT_EQ(a.find_histogram("h")->min(), 1u);
    EXPECT_EQ(a.find_histogram("h")->max(), 1000u);
}

TEST(MetricsRegistry, MergeIsDeterministicForAGivenFoldOrder) {
    auto make = [](std::uint64_t salt) {
        MetricsRegistry r;
        r.counter("events_total").inc(salt);
        r.histogram("lat_cycles").record(salt * 17);
        r.gauge("depth").set(static_cast<std::int64_t>(salt));
        return r;
    };
    auto fold = [&make] {
        MetricsRegistry merged;
        for (std::uint64_t i = 0; i < 8; ++i) merged.merge_from(make(i));
        return merged.prometheus();
    };
    EXPECT_EQ(fold(), fold());
}

// --- Exposition formats -----------------------------------------------------

MetricsRegistry golden_registry() {
    MetricsRegistry r;
    r.set_help("cres_demo_events_total", "Demo events observed");
    r.set_help("cres_monitor_polls_total",
               "Monitor poll invocations by monitor");
    r.counter("cres_demo_events_total").inc(3);
    r.counter("cres_monitor_polls_total{monitor=\"bus-monitor\"}").inc(7);
    r.counter("cres_monitor_polls_total{monitor=\"cfi-monitor\"}").inc(9);
    Gauge& g = r.gauge("cres_demo_queue_depth");
    g.set(4);
    g.set(2);
    Histogram& h = r.histogram("cres_demo_latency_cycles");
    h.record(0);
    h.record(1);
    h.record(5);
    h.record(1000);
    return r;
}

TEST(Exposition, PrometheusMatchesGoldenFile) {
    const std::string path =
        std::string(CRES_OBS_GOLDEN_DIR) + "/obs_exposition.golden";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path;
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden_registry().prometheus(), golden.str());
}

TEST(Exposition, TypeLinesAreDedupedAcrossLabelSets) {
    const std::string text = golden_registry().prometheus();
    std::size_t type_lines = 0;
    std::size_t pos = 0;
    while ((pos = text.find("# TYPE cres_monitor_polls_total", pos)) !=
           std::string::npos) {
        ++type_lines;
        ++pos;
    }
    EXPECT_EQ(type_lines, 1u);  // One TYPE line despite two label sets.
}

TEST(Exposition, HelpLinesEmitOncePerBaseAndOnlyWhenRegistered) {
    const std::string text = golden_registry().prometheus();
    // Registered help precedes the TYPE line; one line per base even
    // with two label sets; unregistered series get no HELP at all.
    EXPECT_NE(text.find("# HELP cres_demo_events_total Demo events "
                        "observed\n# TYPE cres_demo_events_total counter"),
              std::string::npos);
    std::size_t help_lines = 0;
    std::size_t pos = 0;
    while ((pos = text.find("# HELP cres_monitor_polls_total", pos)) !=
           std::string::npos) {
        ++help_lines;
        ++pos;
    }
    EXPECT_EQ(help_lines, 1u);
    EXPECT_EQ(text.find("# HELP cres_demo_queue_depth"), std::string::npos);
}

TEST(Exposition, MergeUnionsHelpFirstRegistrationWins) {
    MetricsRegistry a;
    MetricsRegistry b;
    a.counter("x_total").inc();
    b.counter("x_total").inc();
    b.counter("y_total").inc();
    a.set_help("x_total", "from a");
    b.set_help("x_total", "from b");
    b.set_help("y_total", "only b knows");
    a.merge_from(b);
    ASSERT_NE(a.find_help("x_total"), nullptr);
    EXPECT_EQ(*a.find_help("x_total"), "from a");  // First wins.
    ASSERT_NE(a.find_help("y_total"), nullptr);
    EXPECT_EQ(*a.find_help("y_total"), "only b knows");
    EXPECT_EQ(a.find_help("z_total"), nullptr);
}

TEST(Exposition, EmptyHistogramEmitsOnlyInfBucket) {
    MetricsRegistry r;
    r.histogram("empty_cycles");
    const std::string text = r.prometheus();
    EXPECT_NE(text.find("empty_cycles_bucket{le=\"+Inf\"} 0"),
              std::string::npos);
    EXPECT_EQ(text.find("le=\"0\""), std::string::npos);
}

TEST(Exposition, JsonSnapshotHasAllThreeSections) {
    const std::string json = golden_registry().json();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"cres_demo_events_total\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"value\": 2, \"max\": 4"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 4, \"sum\": 1006"), std::string::npos);
    // Inline label quotes must be escaped into valid JSON keys.
    EXPECT_NE(json.find("{monitor=\\\"bus-monitor\\\"}"), std::string::npos);
}

// --- CSF span tracing -------------------------------------------------------

TEST(SpanTracer, FullLifecyclePopulatesEveryPhaseHistogram) {
    MetricsRegistry r;
    SpanTracer spans(r);
    const std::uint64_t id = spans.open(100);
    EXPECT_TRUE(spans.is_open(id));
    EXPECT_TRUE(spans.mark(id, CsfPhase::kDetect, 110));
    EXPECT_TRUE(spans.mark(id, CsfPhase::kRespond, 130));
    EXPECT_TRUE(spans.mark(id, CsfPhase::kContain, 150));
    EXPECT_TRUE(spans.close(id, 200));
    EXPECT_FALSE(spans.is_open(id));
    EXPECT_EQ(spans.open_spans(), 0u);
    EXPECT_EQ(spans.incidents_total(), 1u);

    EXPECT_EQ(r.find_histogram("cres_csf_detect_latency_cycles")->sum(), 10u);
    EXPECT_EQ(r.find_histogram("cres_csf_respond_latency_cycles")->sum(),
              30u);
    EXPECT_EQ(r.find_histogram("cres_csf_contain_latency_cycles")->sum(),
              50u);
    EXPECT_EQ(r.find_histogram("cres_csf_recover_latency_cycles")->sum(),
              100u);
    EXPECT_EQ(r.find_histogram("cres_csf_total_cycles")->sum(), 100u);
    EXPECT_EQ(r.find_counter("cres_csf_incidents_total")->value(), 1u);
    EXPECT_EQ(r.find_gauge("cres_csf_incidents_open")->value(), 0);
    EXPECT_EQ(r.find_gauge("cres_csf_incidents_open")->max(), 1);
}

TEST(SpanTracer, MarksAreIdempotentPerPhase) {
    MetricsRegistry r;
    SpanTracer spans(r);
    const std::uint64_t id = spans.open(0);
    EXPECT_TRUE(spans.mark(id, CsfPhase::kDetect, 10));
    EXPECT_FALSE(spans.mark(id, CsfPhase::kDetect, 999));  // First wins.
    EXPECT_EQ(r.find_histogram("cres_csf_detect_latency_cycles")->count(),
              1u);
    EXPECT_EQ(r.find_histogram("cres_csf_detect_latency_cycles")->sum(), 10u);
}

TEST(SpanTracer, UnknownAndClosedIdsAreRejected) {
    MetricsRegistry r;
    SpanTracer spans(r);
    EXPECT_FALSE(spans.mark(42, CsfPhase::kDetect, 1));
    EXPECT_FALSE(spans.close(42, 1));
    const std::uint64_t id = spans.open(0);
    EXPECT_TRUE(spans.close(id, 5));
    EXPECT_FALSE(spans.close(id, 9));  // Already retired.
    EXPECT_FALSE(spans.mark(id, CsfPhase::kContain, 9));
}

TEST(SpanTracer, OrphansStayOpenAndQueryable) {
    MetricsRegistry r;
    SpanTracer spans(r);
    const std::uint64_t a = spans.open(0);
    const std::uint64_t b = spans.open(10);
    (void)spans.close(b, 20);
    EXPECT_EQ(spans.open_spans(), 1u);  // `a` never recovered.
    EXPECT_TRUE(spans.is_open(a));
    EXPECT_EQ(r.find_gauge("cres_csf_incidents_open")->value(), 1);
    // The orphan is the "never recovered" signal: total_cycles saw only
    // the closed incident.
    EXPECT_EQ(r.find_histogram("cres_csf_total_cycles")->count(), 1u);
}

TEST(SpanTracer, CloseRecordsRecoverEvenWithoutExplicitMark) {
    MetricsRegistry r;
    SpanTracer spans(r);
    const std::uint64_t id = spans.open(100);
    EXPECT_TRUE(spans.close(id, 400));
    EXPECT_EQ(r.find_histogram("cres_csf_recover_latency_cycles")->sum(),
              300u);
}

// --- Structured log sink ----------------------------------------------------

TEST(JsonLogSink, EmitsOneJsonObjectPerLine) {
    std::ostringstream out;
    Logger& logger = Logger::instance();
    const LogLevel saved = logger.level();
    logger.set_level(LogLevel::kDebug);
    std::uint64_t cycle = 77;
    logger.set_sink(json_log_sink(out, [&cycle] { return cycle; }));
    log_warn("engine \"hot\"\n");
    cycle = 78;
    log_info("ok");
    logger.set_sink(nullptr);  // Restore stderr for other tests.
    logger.set_level(saved);

    EXPECT_EQ(out.str(),
              "{\"at\": 77, \"source\": \"log\", \"kind\": \"warn\", "
              "\"severity\": 4, \"detail\": \"engine \\\"hot\\\"\\n\"}\n"
              "{\"at\": 78, \"source\": \"log\", \"kind\": \"info\", "
              "\"severity\": 6, \"detail\": \"ok\"}\n");
}

// --- Flight recorder ---------------------------------------------------------

TEST(FlightRecorder, RingWraparoundEvictsExactlyTheOldest) {
    FlightRecorder rec(8);
    const std::uint16_t src = rec.intern("mon");
    const std::uint16_t kind = rec.intern("evt");
    for (std::uint64_t i = 0; i < 11; ++i) {  // N + k with N=8, k=3.
        rec.record(100 + i, src, kind, 0, FlightRecordType::kInstant, i, 0,
                   "d" + std::to_string(i));
    }
    EXPECT_EQ(rec.capacity(), 8u);
    EXPECT_EQ(rec.size(), 8u);
    EXPECT_EQ(rec.total_emitted(), 11u);
    EXPECT_EQ(rec.evicted(), 3u);

    // Exactly the oldest k records are gone; survivors keep emission
    // order and strictly increasing cycles.
    std::vector<std::uint64_t> seen;
    std::uint64_t last_at = 0;
    rec.for_each([&](const FlightRecord& r) {
        seen.push_back(r.a);
        EXPECT_GT(r.at, last_at);
        last_at = r.at;
        EXPECT_EQ(r.detail_view(), "d" + std::to_string(r.a));
    });
    EXPECT_EQ(seen, (std::vector<std::uint64_t>{3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST(FlightRecorder, DetailIsTruncatedNotOverrun) {
    FlightRecorder rec(2);
    const std::string long_detail(100, 'x');
    rec.record(1, 0, 0, 0, FlightRecordType::kInstant, 0, 0, long_detail);
    rec.record(2, 0, 0, 0, FlightRecordType::kInstant, 0, 0, "short");
    std::vector<std::string> details;
    rec.for_each([&](const FlightRecord& r) {
        details.emplace_back(r.detail_view());
    });
    ASSERT_EQ(details.size(), 2u);
    EXPECT_EQ(details[0], std::string(FlightRecord::kDetailCapacity, 'x'));
    EXPECT_EQ(details[1], "short");  // Stale slot bytes zeroed on reuse.
}

TEST(FlightRecorder, ZeroCapacityDisablesRecording) {
    FlightRecorder rec(0);
    rec.record(1, 0, 0, 0, FlightRecordType::kInstant, 0, 0, "x");
    rec.record_slow(2, "a", "b", 0, FlightRecordType::kInstant, 0, 0, "y");
    EXPECT_EQ(rec.size(), 0u);
    EXPECT_EQ(rec.total_emitted(), 0u);
    EXPECT_TRUE(rec.empty());
}

TEST(FlightRecorder, InternIsStableAndNamesResolve) {
    FlightRecorder rec(4);
    const std::uint16_t a = rec.intern("alpha");
    const std::uint16_t b = rec.intern("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(rec.intern("alpha"), a);  // Get-or-create.
    EXPECT_EQ(rec.name(a), "alpha");
    EXPECT_EQ(rec.name(b), "beta");
    EXPECT_EQ(rec.name(999), "?");
    ASSERT_EQ(rec.names().size(), 2u);
}

TEST(FlightRecorder, SnapshotsByCycleAndBySequenceWatermark) {
    FlightRecorder rec(8);
    for (std::uint64_t i = 0; i < 6; ++i) {
        rec.record(10 * i, 0, 0, 0, FlightRecordType::kInstant, i, 0, {});
    }
    const auto since30 = rec.snapshot_since(30);
    ASSERT_EQ(since30.size(), 3u);
    EXPECT_EQ(since30.front().at, 30u);

    // Watermark semantics: records emitted after total_emitted() was
    // read — the postmortem dedup between pre-window and close.
    const std::uint64_t mark = rec.total_emitted();
    rec.record(100, 0, 0, 0, FlightRecordType::kInstant, 77, 0, {});
    rec.record(110, 0, 0, 0, FlightRecordType::kInstant, 78, 0, {});
    const auto tail = rec.snapshot_emitted_since(mark);
    ASSERT_EQ(tail.size(), 2u);
    EXPECT_EQ(tail[0].a, 77u);
    EXPECT_EQ(tail[1].a, 78u);

    // After wrap, evicted sequence numbers are simply gone.
    for (std::uint64_t i = 0; i < 8; ++i) {
        rec.record(200 + i, 0, 0, 0, FlightRecordType::kInstant, i, 0, {});
    }
    EXPECT_TRUE(rec.snapshot_emitted_since(0).size() == rec.size());
}

// --- Monitor poll-gap anchoring ---------------------------------------------

class ProbeMonitor : public core::Monitor {
public:
    using core::Monitor::Monitor;
    using core::Monitor::note_poll;  // Re-expose for the test driver.
    [[nodiscard]] std::string description() const override {
        return "test probe";
    }
};

class NullSink : public core::EventSink {
public:
    void submit(const core::MonitorEvent&) override {}
};

TEST(Monitor, FirstPollContributesNoGapSample) {
    // Regression pin for the cycle-0 anchor audit: last_poll_at_ starts
    // at a sentinel, not 0, so a monitor whose first pass happens late
    // (here: cycle 1000) must not smear a bogus 0..1000 "gap" into
    // cres_monitor_poll_gap_cycles.
    MetricsRegistry r;
    NullSink sink;
    ProbeMonitor probe("probe", sink);
    probe.bind_metrics(r);

    probe.note_poll(1000);  // First poll, late.
    const auto* gap =
        r.find_histogram("cres_monitor_poll_gap_cycles{monitor=\"probe\"}");
    ASSERT_NE(gap, nullptr);
    EXPECT_EQ(gap->count(), 0u);  // No anchor sample.

    probe.note_poll(1100);  // Real gap: 100 cycles.
    EXPECT_EQ(gap->count(), 1u);
    EXPECT_EQ(gap->sum(), 100u);
    // Bucket-level: the sample sits in the 100-cycle bucket; the bucket
    // a bogus 1000-cycle first-poll gap would have hit stays empty.
    EXPECT_EQ(gap->bucket(Histogram::bucket_index(100)), 1u);
    EXPECT_EQ(gap->bucket(Histogram::bucket_index(1000)), 0u);

    // Polls counter saw both passes (only the gap skips the first).
    const auto* polls =
        r.find_counter("cres_monitor_polls_total{monitor=\"probe\"}");
    ASSERT_NE(polls, nullptr);
    EXPECT_EQ(polls->value(), 2u);
}

// --- Trace-stream growth gauges ---------------------------------------------

TEST(TraceStream, GrowthGaugesTrackEmitsAndBacklog) {
    sim::TraceStream stream;
    stream.emit(1, "cpu", "step", "pre-bind");  // Backlog before binding.

    MetricsRegistry r;
    stream.bind_metrics(r);
    const auto* records = r.find_gauge("cres_trace_records");
    const auto* bytes = r.find_gauge("cres_trace_bytes_approx");
    ASSERT_NE(records, nullptr);
    ASSERT_NE(bytes, nullptr);
    EXPECT_EQ(records->value(), 1);  // Late binding reports the backlog.
    const std::int64_t bytes_one = bytes->value();
    EXPECT_GE(bytes_one,
              static_cast<std::int64_t>(sizeof(sim::TraceRecord)));

    stream.emit(2, "cpu", "step");
    EXPECT_EQ(records->value(), 2);
    EXPECT_GT(bytes->value(), bytes_one);
    EXPECT_EQ(bytes->value(),
              static_cast<std::int64_t>(stream.bytes_approx()));

    stream.clear();  // Reboot wiping volatile telemetry.
    EXPECT_EQ(records->value(), 0);
    EXPECT_EQ(bytes->value(), 0);
    EXPECT_EQ(records->max(), 2);  // High-water survives the wipe.
}

// --- Sealed postmortem bundles ----------------------------------------------

PostmortemBundle sample_bundle() {
    PostmortemBundle b;
    b.device = "device-B";
    b.incident_id = 3;
    b.opened_at = 30000;
    b.closed_at = 31000;
    b.window_begin = 25000;
    b.marked = 0b1011;  // detect, respond, recover.
    b.phase_at = {30010, 30020, 0, 31000};
    b.names = {"cfi-monitor", "control-flow", "ssm", "queue_depth"};
    FlightRecord alert;
    alert.at = 30000;
    alert.source = 0;
    alert.kind = 1;
    alert.severity = 3;
    alert.a = 0x24000;
    const std::string_view detail = "return-address mismatch";
    std::memcpy(alert.detail.data(), detail.data(), detail.size());
    b.telemetry.push_back(alert);
    FlightRecord depth;
    depth.at = 30010;
    depth.source = 2;
    depth.kind = 3;
    depth.type = FlightRecordType::kCounter;
    depth.a = 2;
    b.telemetry.push_back(depth);
    b.metrics_json = "{\"counters\": {\"cres_demo_total\": 1}}\n";
    b.evidence_count = 7;
    b.evidence_head_hex = "00ff";
    return b;
}

TEST(Postmortem, SealRoundTripsAndAnySingleByteFlipFails) {
    const Bytes key = to_bytes("postmortem-seal-key");
    const crypto::HmacSha256 sealer(key);
    const std::string sealed = seal_postmortem(sample_bundle(), sealer);

    EXPECT_TRUE(verify_postmortem(sealed, key));
    EXPECT_FALSE(verify_postmortem(sealed, to_bytes("wrong-key")));

    // Tamper-evidence is total: flipping any single byte — body, tag
    // hex, even the framing braces — must fail verification.
    for (std::size_t i = 0; i < sealed.size(); ++i) {
        std::string mutated = sealed;
        mutated[i] = static_cast<char>(mutated[i] ^ 0x01);
        EXPECT_FALSE(verify_postmortem(mutated, key)) << "byte " << i;
    }

    // Malformed inputs are rejected, not crashes.
    EXPECT_FALSE(verify_postmortem("", key));
    EXPECT_FALSE(verify_postmortem("{}", key));
    EXPECT_FALSE(verify_postmortem(sealed.substr(0, sealed.size() / 2), key));
}

TEST(Postmortem, BodyRendersPhasesTelemetryAndEmbeddedMetrics) {
    const std::string body = render_postmortem_body(sample_bundle());
    EXPECT_NE(body.find("\"device\": \"device-B\""), std::string::npos);
    EXPECT_NE(body.find("\"detect\": 30010"), std::string::npos);
    EXPECT_NE(body.find("\"respond\": 30020"), std::string::npos);
    EXPECT_NE(body.find("\"recover\": 31000"), std::string::npos);
    EXPECT_EQ(body.find("\"contain\""), std::string::npos);  // Unmarked.
    EXPECT_NE(body.find("\"source\": \"cfi-monitor\""), std::string::npos);
    EXPECT_NE(body.find("\"type\": \"counter\""), std::string::npos);
    EXPECT_NE(body.find("\"cres_demo_total\": 1"), std::string::npos);
    EXPECT_EQ(body.find('\0'), std::string::npos);  // NUL padding stripped.

    PostmortemBundle empty;
    empty.device = "d";
    const std::string minimal = render_postmortem_body(empty);
    EXPECT_NE(minimal.find("\"telemetry\": []"), std::string::npos);
    EXPECT_NE(minimal.find("\"metrics\": null"), std::string::npos);
}

// --- Chrome trace export -----------------------------------------------------

ChromeTrace golden_chrome_trace() {
    ChromeTrace t;
    const std::uint32_t pid = t.process("device-0");
    const std::uint32_t incidents = t.thread(pid, "incidents");
    t.complete(pid, incidents, "incident #0", "incident", 30000, 1200,
               "stack smash");
    t.instant(pid, incidents, "detect", "csf", 30010);
    const std::uint32_t cfi = t.thread(pid, "cfi-monitor");
    t.instant(pid, cfi, "control-flow", "critical", 30005,
              "return-address \"mismatch\"");
    t.counter(pid, "queue_depth", 30010, 3);
    t.counter(pid, "queue_depth", 30020, 0);
    const std::uint32_t pid2 = t.process("device-1");
    const std::uint32_t bus = t.thread(pid2, "bus-monitor");
    t.instant(pid2, bus, "bus-violation", "alert", 29990);
    return t;
}

TEST(ChromeTraceExport, MatchesGoldenFile) {
    const std::string path =
        std::string(CRES_OBS_GOLDEN_DIR) + "/chrome_trace.golden";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path;
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden_chrome_trace().json(), golden.str());
}

ChromeTrace golden_flow_trace() {
    // Two cross-device frames: each flow_start ("s") pairs with exactly
    // one flow_step ("t") through its span id, across process tracks.
    ChromeTrace t;
    const std::uint32_t dev0 = t.process("device-0");
    const std::uint32_t net0 = t.thread(dev0, "net");
    const std::uint32_t dev1 = t.process("device-1");
    const std::uint32_t net1 = t.thread(dev1, "net");
    t.flow_start(dev0, net0, "frame", "m2m-flow", 1000,
                 (std::uint64_t{1} << 32) | 1);
    t.flow_step(dev1, net1, "frame", "m2m-flow", 1400,
                (std::uint64_t{1} << 32) | 1);
    t.flow_start(dev1, net1, "frame", "m2m-flow", 2000,
                 (std::uint64_t{2} << 32) | 7);
    t.flow_step(dev0, net0, "frame", "m2m-flow", 2500,
                (std::uint64_t{2} << 32) | 7);
    return t;
}

TEST(ChromeTraceExport, FlowEventsMatchGoldenFile) {
    const std::string path =
        std::string(CRES_OBS_GOLDEN_DIR) + "/chrome_flow.golden";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path;
    std::stringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(golden_flow_trace().json(), golden.str());
}

TEST(ChromeTraceExport, EveryFlowStepIdHasAMatchingFlowStart) {
    const std::string json = golden_flow_trace().json();
    // The s/t pairing contract the CI jq check enforces on the real
    // estate artefact, pinned here at unit scope: same count of "s"
    // and "t" phases, and both span ids appear exactly twice.
    const auto count = [&json](const std::string& needle) {
        std::size_t n = 0;
        std::size_t pos = 0;
        while ((pos = json.find(needle, pos)) != std::string::npos) {
            ++n;
            ++pos;
        }
        return n;
    };
    EXPECT_EQ(count("\"ph\":\"s\""), 2u);
    EXPECT_EQ(count("\"ph\":\"t\""), 2u);
    // Hex-string ids: full 64-bit span ids survive double-based JSON
    // consumers (jq, browsers) only as strings.
    EXPECT_EQ(count("\"id\":\"0x100000001\""), 2u);
    EXPECT_EQ(count("\"id\":\"0x200000007\""), 2u);
}

TEST(ChromeTraceExport, TrackIdsAreAssignedInRegistrationOrder) {
    ChromeTrace t;
    const std::uint32_t a = t.process("a");
    const std::uint32_t b = t.process("b");
    EXPECT_EQ(a, 1u);
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(t.process("a"), a);  // Get-or-create.
    EXPECT_EQ(t.thread(a, "x"), 1u);
    EXPECT_EQ(t.thread(b, "y"), 1u);  // Tids are per-process.
    EXPECT_EQ(t.thread(a, "z"), 2u);
    EXPECT_EQ(t.thread(a, "x"), 1u);
    // Two builders fed identically render identical JSON.
    EXPECT_EQ(golden_chrome_trace().json(), golden_chrome_trace().json());
}

// --- End to end: one attack populates the CSF lifecycle ---------------------

TEST(EndToEnd, StackSmashPopulatesCsfLatencyHistograms) {
    platform::ScenarioConfig config;
    config.node.name = "obs-e2e";
    config.node.resilient = true;
    config.warmup = 15000;
    config.horizon = 80000;
    config.seed = 81;
    platform::Scenario scenario(config);
    attack::StackSmashAttack attack;
    (void)scenario.run(&attack, 20000);

    const auto& metrics = scenario.node().metrics;

    // Monitors polled and the SSM processed events.
    const auto* cfi_polls = metrics.find_counter(
        "cres_monitor_polls_total{monitor=\"cfi-monitor\"}");
    ASSERT_NE(cfi_polls, nullptr);
    EXPECT_GT(cfi_polls->value(), 0u);
    const auto* events =
        metrics.find_counter("cres_ssm_events_processed_total");
    ASSERT_NE(events, nullptr);
    EXPECT_GT(events->value(), 0u);
    EXPECT_EQ(events->value(), scenario.node().ssm->events_processed());

    // Detection latency is bounded by the SSM poll interval.
    const auto* detection =
        metrics.find_histogram("cres_ssm_detection_latency_cycles");
    ASSERT_NE(detection, nullptr);
    EXPECT_GT(detection->count(), 0u);
    EXPECT_LE(detection->max(), config.node.ssm_poll_interval);

    // The breach ran the full CSF lifecycle: detect -> respond ->
    // recover (checkpoint restore), so each latency histogram has at
    // least one incident in it, with sane ordering.
    const auto* detect =
        metrics.find_histogram("cres_csf_detect_latency_cycles");
    const auto* respond =
        metrics.find_histogram("cres_csf_respond_latency_cycles");
    const auto* recover =
        metrics.find_histogram("cres_csf_recover_latency_cycles");
    ASSERT_NE(detect, nullptr);
    ASSERT_NE(respond, nullptr);
    ASSERT_NE(recover, nullptr);
    EXPECT_GT(detect->count(), 0u);
    EXPECT_GT(respond->count(), 0u);
    EXPECT_GT(recover->count(), 0u);
    EXPECT_LE(detect->min(), respond->min());
    EXPECT_LE(respond->min(), recover->max());

    // Response actions were counted per action label.
    const auto* actions =
        metrics.find_counter("cres_response_actions_total");
    ASSERT_NE(actions, nullptr);
    EXPECT_EQ(actions->value(),
              scenario.node().response_manager->total());

    // And the snapshot formats render it all without blowing up.
    EXPECT_NE(metrics.prometheus().find("cres_csf_detect_latency_cycles"),
              std::string::npos);
    EXPECT_NE(metrics.json().find("cres_ssm_events_processed_total"),
              std::string::npos);
}

TEST(EndToEnd, StackSmashSealsAVerifiablePostmortemBundle) {
    platform::ScenarioConfig config;
    config.node.name = "obs-pm";
    config.node.resilient = true;
    config.warmup = 15000;
    config.horizon = 80000;
    config.seed = 81;
    platform::Scenario scenario(config);
    attack::StackSmashAttack attack;
    (void)scenario.run(&attack, 20000);

    auto& node = scenario.node();
    ASSERT_NE(node.ssm, nullptr);
    ASSERT_FALSE(node.ssm->postmortems().empty());
    const PostmortemBundle& bundle = node.ssm->postmortems().front();

    // Shape: identity, window ordering, phase marks, cycle-sorted
    // telemetry, metrics snapshot and evidence anchor all present.
    EXPECT_EQ(bundle.device, "obs-pm");
    EXPECT_LE(bundle.window_begin, bundle.opened_at);
    EXPECT_LE(bundle.opened_at, bundle.closed_at);
    EXPECT_TRUE(bundle.marked &
                (1u << static_cast<std::size_t>(CsfPhase::kDetect)));
    EXPECT_TRUE(bundle.marked &
                (1u << static_cast<std::size_t>(CsfPhase::kRecover)));
    ASSERT_FALSE(bundle.telemetry.empty());
    for (std::size_t i = 1; i < bundle.telemetry.size(); ++i) {
        EXPECT_LE(bundle.telemetry[i - 1].at, bundle.telemetry[i].at) << i;
    }
    EXPECT_FALSE(bundle.names.empty());
    EXPECT_FALSE(bundle.metrics_json.empty());
    EXPECT_GT(bundle.evidence_count, 0u);
    EXPECT_EQ(bundle.evidence_head_hex.size(), 64u);  // Hex SHA-256.

    // Offline verification round trip against the derived seal key.
    const std::string sealed = node.ssm->sealed_postmortem(0);
    EXPECT_TRUE(verify_postmortem(sealed, scenario.seal_key()));
    std::string flipped = sealed;
    flipped[flipped.size() / 3] =
        static_cast<char>(flipped[flipped.size() / 3] ^ 0x80);
    EXPECT_FALSE(verify_postmortem(flipped, scenario.seal_key()));
    EXPECT_THROW((void)node.ssm->sealed_postmortem(9999), Error);

    // The device timeline exports and names this device's track.
    const std::string trace = node.chrome_trace();
    EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
    EXPECT_NE(trace.find("obs-pm"), std::string::npos);
    EXPECT_NE(trace.find("\"incidents\""), std::string::npos);
    // The recorder itself kept rolling past the snapshot.
    EXPECT_GT(node.recorder.total_emitted(), 0u);
}

TEST(EndToEnd, UnboundRegistryStaysEmpty) {
    platform::ScenarioConfig config;
    config.node.name = "obs-off";
    config.node.resilient = true;
    config.node.metrics = false;  // Compiled in, never queried.
    config.warmup = 5000;
    config.horizon = 30000;
    config.seed = 81;
    platform::Scenario scenario(config);
    attack::StackSmashAttack attack;
    (void)scenario.run(&attack, 8000);
    EXPECT_EQ(scenario.node().metrics.size(), 0u);
    EXPECT_EQ(scenario.node().metrics.prometheus(), "");
}

}  // namespace
}  // namespace cres::obs
