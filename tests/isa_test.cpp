// ISA tests: encoding, assembler, CPU semantics, privilege, security
// state, traps, interrupts and observer hooks.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "isa/assembler.h"
#include "isa/cpu.h"
#include "isa/encoding.h"
#include "mem/ram.h"
#include "util/error.h"

namespace cres::isa {
namespace {

constexpr mem::Addr kRamBase = 0x0000'0000;
constexpr mem::Addr kRamSize = 0x1'0000;

/// Minimal SoC: one RAM region and one CPU.
class CpuFixture : public ::testing::Test {
protected:
    CpuFixture() : ram("ram", kRamSize), cpu("cpu0", bus) {
        bus.map(mem::RegionConfig{"ram", kRamBase, kRamSize, false, false},
                ram);
    }

    /// Assembles, loads at 0, resets the CPU and runs up to `max_steps`.
    Program run(const std::string& source, std::size_t max_steps = 10000) {
        Program p = assemble(source, kRamBase);
        ram.load(0, p.code);
        cpu.reset(kRamBase);
        std::size_t steps = 0;
        while (!cpu.halted() && steps++ < max_steps) cpu.step();
        return p;
    }

    mem::Bus bus;
    mem::Ram ram;
    Cpu cpu;
};

TEST(Encoding, RoundTrip) {
    Instruction insn;
    insn.opcode = Opcode::kAddi;
    insn.rd = 3;
    insn.rs1 = 7;
    insn.imm = 0xfff0;
    const Instruction back = decode(encode(insn));
    EXPECT_EQ(back.opcode, Opcode::kAddi);
    EXPECT_EQ(back.rd, 3);
    EXPECT_EQ(back.rs1, 7);
    EXPECT_EQ(back.imm, 0xfff0);
    EXPECT_EQ(back.simm(), -16);
}

TEST(Encoding, Rs2RoundTrip) {
    Instruction insn;
    insn.opcode = Opcode::kAdd;
    insn.rd = 1;
    insn.rs1 = 2;
    insn.rs2 = 9;
    const Instruction back = decode(encode(insn));
    EXPECT_EQ(back.rs2, 9);
}

TEST(Encoding, OpcodeNames) {
    EXPECT_EQ(opcode_name(Opcode::kAdd), "add");
    EXPECT_EQ(opcode_from_name("beq"), Opcode::kBeq);
    EXPECT_FALSE(opcode_from_name("bogus").has_value());
}

TEST(Encoding, ValidOpcodeCheck) {
    EXPECT_TRUE(is_valid_opcode(encode(Instruction{Opcode::kNop, 0, 0, 0, 0})));
    EXPECT_FALSE(is_valid_opcode(0xff000000));
}

TEST(Encoding, TrapCauseNames) {
    EXPECT_EQ(trap_cause_name(1), "illegal-instruction");
    EXPECT_EQ(trap_cause_name(0x80000003), "interrupt-3");
}

TEST(Assembler, SymbolsAndOrigin) {
    const Program p = assemble("start: nop\nend: halt\n", 0x100);
    EXPECT_EQ(p.symbol("start"), 0x100u);
    EXPECT_EQ(p.symbol("end"), 0x104u);
    EXPECT_EQ(p.code.size(), 8u);
    EXPECT_THROW((void)p.symbol("missing"), IsaError);
}

TEST(Assembler, RejectsUnknownMnemonic) {
    EXPECT_THROW(assemble("frobnicate r1, r2\n"), IsaError);
}

TEST(Assembler, RejectsBadRegister) {
    EXPECT_THROW(assemble("addi r99, r0, 1\n"), IsaError);
    EXPECT_THROW(assemble("addi rx, r0, 1\n"), IsaError);
}

TEST(Assembler, RejectsUndefinedLabel) {
    EXPECT_THROW(assemble("beq r0, r0, nowhere\n"), IsaError);
}

TEST(Assembler, RejectsDuplicateLabel) {
    EXPECT_THROW(assemble("a: nop\na: nop\n"), IsaError);
}

TEST(Assembler, RejectsOutOfRangeImmediate) {
    EXPECT_THROW(assemble("addi r1, r0, 100000\n"), IsaError);
}

TEST(Assembler, RejectsWrongOperandCount) {
    EXPECT_THROW(assemble("add r1, r2\n"), IsaError);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
    try {
        assemble("nop\nnop\nbogus\n");
        FAIL() << "expected IsaError";
    } catch (const IsaError& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(Assembler, DataDirectives) {
    const Program p = assemble(".word 0x11223344\n.space 4\n.ascii \"AB\"\n");
    ASSERT_EQ(p.code.size(), 10u);
    EXPECT_EQ(p.code[0], 0x44);
    EXPECT_EQ(p.code[3], 0x11);
    EXPECT_EQ(p.code[4], 0);
    EXPECT_EQ(p.code[8], 'A');
    EXPECT_EQ(p.code[9], 'B');
}

TEST(Assembler, WordCanReferenceSymbol) {
    const Program p = assemble("target: nop\n.word target\n", 0x200);
    EXPECT_EQ(p.code[4], 0x00);
    EXPECT_EQ(p.code[5], 0x02);
}

TEST_F(CpuFixture, ArithmeticAndLogic) {
    run(R"(
        addi r1, r0, 10
        addi r2, r0, 3
        add  r3, r1, r2
        sub  r4, r1, r2
        mul  r5, r1, r2
        and  r6, r1, r2
        or   r7, r1, r2
        xor  r8, r1, r2
        halt
    )");
    EXPECT_EQ(cpu.reg(3), 13u);
    EXPECT_EQ(cpu.reg(4), 7u);
    EXPECT_EQ(cpu.reg(5), 30u);
    EXPECT_EQ(cpu.reg(6), 2u);
    EXPECT_EQ(cpu.reg(7), 11u);
    EXPECT_EQ(cpu.reg(8), 9u);
}

TEST_F(CpuFixture, ShiftsAndCompares) {
    run(R"(
        addi r1, r0, -8
        shli r2, r1, 1
        shri r3, r1, 28
        sra  r4, r1, r5   ; r5 == 0 -> unchanged
        addi r5, r0, 2
        sra  r4, r1, r5   ; -8 >> 2 = -2
        slt  r6, r1, r0   ; -8 < 0 signed -> 1
        sltu r7, r1, r0   ; 0xfffffff8 < 0 unsigned -> 0
        halt
    )");
    EXPECT_EQ(cpu.reg(2), 0xfffffff0u);
    EXPECT_EQ(cpu.reg(3), 0xfu);
    EXPECT_EQ(cpu.reg(4), static_cast<std::uint32_t>(-2));
    EXPECT_EQ(cpu.reg(6), 1u);
    EXPECT_EQ(cpu.reg(7), 0u);
}

TEST_F(CpuFixture, RegisterZeroIsHardwired) {
    run("addi r0, r0, 5\nadd r1, r0, r0\nhalt\n");
    EXPECT_EQ(cpu.reg(0), 0u);
    EXPECT_EQ(cpu.reg(1), 0u);
}

TEST_F(CpuFixture, LuiOriBuildsConstants) {
    run("li r1, 0xdeadbeef\nhalt\n");
    EXPECT_EQ(cpu.reg(1), 0xdeadbeefu);
}

TEST_F(CpuFixture, LoadsAndStores) {
    run(R"(
        li  r1, 0x8000      ; buffer
        li  r2, 0x11223344
        sw  r2, r1, 0
        lw  r3, r1, 0
        lh  r4, r1, 0
        lb  r5, r1, 3
        sb  r2, r1, 8
        lw  r6, r1, 8
        halt
    )");
    EXPECT_EQ(cpu.reg(3), 0x11223344u);
    EXPECT_EQ(cpu.reg(4), 0x3344u);
    EXPECT_EQ(cpu.reg(5), 0x11u);
    EXPECT_EQ(cpu.reg(6), 0x44u);
}

TEST_F(CpuFixture, BranchesAndLoops) {
    run(R"(
        addi r1, r0, 5      ; counter
        addi r2, r0, 0      ; accumulator
    loop:
        add  r2, r2, r1
        addi r1, r1, -1
        bne  r1, r0, loop
        halt
    )");
    EXPECT_EQ(cpu.reg(2), 15u);  // 5+4+3+2+1
}

TEST_F(CpuFixture, AllBranchConditions) {
    run(R"(
        addi r1, r0, -1
        addi r2, r0, 1
        addi r10, r0, 0
        blt  r1, r2, a      ; signed: -1 < 1 taken
        halt
    a:  ori  r10, r10, 1
        bltu r1, r2, b      ; unsigned: 0xffffffff < 1 not taken
        ori  r10, r10, 2
    b:  bge  r2, r1, c      ; signed: 1 >= -1 taken
        halt
    c:  ori  r10, r10, 4
        bgeu r1, r2, d      ; unsigned: taken
        halt
    d:  ori  r10, r10, 8
        beq  r1, r1, e
        halt
    e:  ori  r10, r10, 16
        halt
    )");
    EXPECT_EQ(cpu.reg(10), 1u | 2u | 4u | 8u | 16u);
}

TEST_F(CpuFixture, CallAndReturn) {
    run(R"(
        li   sp, 0xf000
        addi r1, r0, 1
        call double_it
        call double_it
        halt
    double_it:
        add r1, r1, r1
        ret
    )");
    EXPECT_EQ(cpu.reg(1), 4u);
}

TEST_F(CpuFixture, ObserverSeesCallsAndReturns) {
    struct Recorder : CpuObserver {
        std::vector<std::pair<mem::Addr, mem::Addr>> calls, returns;
        void on_call(mem::Addr from, mem::Addr target) override {
            calls.emplace_back(from, target);
        }
        void on_return(mem::Addr from, mem::Addr target) override {
            returns.emplace_back(from, target);
        }
    } rec;
    cpu.add_observer(&rec);
    const Program p = run(R"(
        call fn
        halt
    fn: ret
    )");
    cpu.remove_observer(&rec);
    ASSERT_EQ(rec.calls.size(), 1u);
    EXPECT_EQ(rec.calls[0].second, p.symbol("fn"));
    ASSERT_EQ(rec.returns.size(), 1u);
    EXPECT_EQ(rec.returns[0].second, 4u);  // After the call instruction.
}

TEST_F(CpuFixture, HaltNotifiesObservers) {
    struct Recorder : CpuObserver {
        int halts = 0;
        void on_halt(mem::Addr) override { ++halts; }
    } rec;
    cpu.add_observer(&rec);
    run("halt\n");
    cpu.remove_observer(&rec);
    EXPECT_EQ(rec.halts, 1);
}

TEST_F(CpuFixture, IllegalInstructionTrapsAndHaltsWithoutHandler) {
    // mtvec == 0 -> halt on trap.
    ram.load(0, Bytes{0x00, 0x00, 0x00, 0xff});  // Opcode 0xff.
    cpu.reset(0);
    cpu.step();
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.csr(kCsrMcause),
              static_cast<std::uint32_t>(TrapCause::kIllegalInstruction));
}

TEST_F(CpuFixture, TrapVectorsToHandler) {
    run(R"(
        la   r1, handler
        csrw mtvec, r1
        ecall 7
        halt
    handler:
        csrr r2, mcause
        csrr r3, mtval
        addi r4, r0, 99
        halt
    )");
    EXPECT_EQ(cpu.reg(2), static_cast<std::uint32_t>(TrapCause::kEcall));
    EXPECT_EQ(cpu.reg(3), 7u);
    EXPECT_EQ(cpu.reg(4), 99u);
    EXPECT_EQ(cpu.trap_count(), 1u);
}

TEST_F(CpuFixture, MretResumesAfterEcall) {
    run(R"(
        la   r1, handler
        csrw mtvec, r1
        addi r5, r0, 0
        ecall
        addi r5, r5, 100   ; must run after mret
        halt
    handler:
        addi r5, r5, 1
        mret
    )");
    EXPECT_EQ(cpu.reg(5), 101u);
}

TEST_F(CpuFixture, BusFaultTraps) {
    run(R"(
        la   r1, handler
        csrw mtvec, r1
        li   r2, 0x90000000   ; unmapped
        lw   r3, r2, 0
        halt
    handler:
        csrr r4, mcause
        halt
    )");
    EXPECT_EQ(cpu.reg(4), static_cast<std::uint32_t>(TrapCause::kBusFault));
}

TEST_F(CpuFixture, MisalignedAccessTraps) {
    run(R"(
        la   r1, handler
        csrw mtvec, r1
        addi r2, r0, 2
        lw   r3, r2, 0
        halt
    handler:
        csrr r4, mcause
        halt
    )");
    EXPECT_EQ(cpu.reg(4),
              static_cast<std::uint32_t>(TrapCause::kMisalignedAccess));
}

TEST_F(CpuFixture, MpuFaultOnDeniedAccess) {
    Program p = assemble(R"(
        la   r1, handler
        csrw mtvec, r1
        li   r2, 0x8000
        sw   r2, r2, 0
        halt
    handler:
        csrr r4, mcause
        halt
    )");
    ram.load(0, p.code);
    cpu.reset(0);
    cpu.mpu().add_region(
        mem::MpuRegion{"code", 0, 0x1000, true, false, true, true});
    // 0x8000 not covered -> write denied once MPU is on.
    cpu.mpu().set_enabled(true);
    while (!cpu.halted()) cpu.step();
    EXPECT_EQ(cpu.reg(4), static_cast<std::uint32_t>(TrapCause::kMpuFault));
}

TEST_F(CpuFixture, EcallHandlerHookSuppressesTrap) {
    std::uint16_t seen_service = 0;
    cpu.set_ecall_handler([&](Cpu& c, std::uint16_t service) {
        seen_service = service;
        c.set_reg(1, 0x55);
        return true;
    });
    run("ecall 3\nhalt\n");
    EXPECT_EQ(seen_service, 3u);
    EXPECT_EQ(cpu.reg(1), 0x55u);
    EXPECT_EQ(cpu.trap_count(), 0u);
}

TEST_F(CpuFixture, UserModeEntryAndCsrDenial) {
    const Program p = assemble(R"(
        la   r1, handler
        csrw mtvec, r1
        nop
    user_code:
        csrw mscratch, r0
        halt
    handler:
        csrr r2, mcause
        halt
    )");
    ram.load(0, p.code);
    cpu.reset(0);
    // Execute the two setup instructions (la = 2 insns, csrw, nop).
    for (int i = 0; i < 4; ++i) cpu.step();
    cpu.set_pc(p.symbol("user_code"));
    cpu.enter_user_mode();
    while (!cpu.halted()) cpu.step();
    EXPECT_EQ(cpu.reg(2),
              static_cast<std::uint32_t>(TrapCause::kIllegalInstruction));
}

TEST_F(CpuFixture, SmcWithoutSecureWorldFaults) {
    run(R"(
        la   r1, handler
        csrw mtvec, r1
        smc
        halt
    handler:
        csrr r2, mcause
        halt
    )");
    EXPECT_EQ(cpu.reg(2),
              static_cast<std::uint32_t>(TrapCause::kSecurityFault));
}

TEST_F(CpuFixture, SecureWorldRoundTrip) {
    struct Recorder : CpuObserver {
        std::vector<bool> switches;
        void on_world_switch(bool secure) override {
            switches.push_back(secure);
        }
    } rec;
    cpu.add_observer(&rec);
    // Boot runs secure, installs stvec, drops to non-secure, smc's back.
    const Program p = assemble(R"(
        la   r1, secure_entry
        csrw stvec, r1
        la   r1, nonsecure
        csrw sepc, r1
        sret                 ; leave secure world
    nonsecure:
        smc  1               ; request secure service
        halt
    secure_entry:
        addi r9, r9, 1
        sret
    )");
    ram.load(0, p.code);
    cpu.reset(0, /*secure=*/true);
    while (!cpu.halted()) cpu.step();
    cpu.remove_observer(&rec);

    EXPECT_EQ(cpu.reg(9), 1u);
    EXPECT_FALSE(cpu.secure());
    // secure->nonsecure, nonsecure->secure, secure->nonsecure.
    EXPECT_EQ(rec.switches, (std::vector<bool>{false, true, false}));
}

TEST_F(CpuFixture, NonSecureCannotWriteSecureCsrs) {
    run(R"(
        la   r1, handler
        csrw mtvec, r1
        la   r2, handler
        csrw stvec, r2      ; non-secure write to secure CSR
        halt
    handler:
        csrr r3, mcause
        halt
    )");
    EXPECT_EQ(cpu.reg(3),
              static_cast<std::uint32_t>(TrapCause::kSecurityFault));
}

TEST_F(CpuFixture, InterruptDeliveredWhenEnabled) {
    const Program p = assemble(R"(
        la   r1, handler
        csrw mtvec, r1
        addi r2, r0, 4       ; enable irq line 2
        csrw mie, r2
        addi r3, r0, 2       ; mstatus.MIE
        csrw mstatus, r3
    spin:
        j spin
    handler:
        csrr r4, mcause
        halt
    )");
    ram.load(0, p.code);
    cpu.reset(0);
    for (int i = 0; i < 10; ++i) cpu.step();
    cpu.raise_irq(2);
    for (int i = 0; i < 5 && !cpu.halted(); ++i) cpu.step();
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.reg(4),
              static_cast<std::uint32_t>(TrapCause::kInterruptBase) | 2u);
}

TEST_F(CpuFixture, InterruptMaskedWhenDisabled) {
    const Program p = assemble(R"(
    spin:
        addi r1, r1, 1
        j spin
    )");
    ram.load(0, p.code);
    cpu.reset(0);
    cpu.raise_irq(2);  // mie/mstatus.MIE both clear.
    for (int i = 0; i < 10; ++i) cpu.step();
    EXPECT_FALSE(cpu.halted());
    EXPECT_EQ(cpu.trap_count(), 0u);
}

TEST_F(CpuFixture, WfiWaitsForInterrupt) {
    const Program p = assemble(R"(
        la   r1, handler
        csrw mtvec, r1
        addi r2, r0, 2
        csrw mie, r2
        addi r3, r0, 2
        csrw mstatus, r3
        wfi
        halt
    handler:
        addi r9, r0, 1
        halt
    )");
    ram.load(0, p.code);
    cpu.reset(0);
    sim::Simulator sim;
    sim.add_tickable(&cpu);
    sim.run_for(20);
    EXPECT_TRUE(cpu.waiting());
    cpu.raise_irq(1);
    sim.run_for(10);
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.reg(9), 1u);
}

TEST_F(CpuFixture, CycleAccountingChargesStalls) {
    const Program p = assemble(R"(
        li  r1, 0x8000
        lw  r2, r1, 0
        halt
    )");
    ram.load(0, p.code);
    cpu.reset(0);
    sim::Simulator sim;
    sim.add_tickable(&cpu);
    sim.run_for(10);
    EXPECT_TRUE(cpu.halted());
    // 2 insns (li) + 1 lw + 1 stall + 1 halt = 5 active cycles minimum.
    EXPECT_GE(cpu.cycles(), 5u);
    EXPECT_EQ(cpu.instret(), 4u);
}

TEST_F(CpuFixture, InjectTrapForcesHandlerEntry) {
    const Program p = assemble(R"(
        la   r1, handler
        csrw mtvec, r1
    spin:
        j spin
    handler:
        csrr r2, mcause
        halt
    )");
    ram.load(0, p.code);
    cpu.reset(0);
    for (int i = 0; i < 5; ++i) cpu.step();
    cpu.inject_trap(TrapCause::kSecurityFault, 0xabc);
    while (!cpu.halted()) cpu.step();
    EXPECT_EQ(cpu.reg(2),
              static_cast<std::uint32_t>(TrapCause::kSecurityFault));
    EXPECT_EQ(cpu.csr(kCsrMtval), 0xabcu);
}

TEST_F(CpuFixture, HaltedCpuDoesNotStep) {
    run("halt\n");
    const auto before = cpu.instret();
    EXPECT_FALSE(cpu.step());
    EXPECT_EQ(cpu.instret(), before);
}

// --- exhaustive encode/decode/assembler round-trips --------------------

/// Every defined opcode, in enum order.
const std::vector<Opcode>& all_opcodes() {
    static const std::vector<Opcode> ops = {
        Opcode::kNop,  Opcode::kHalt, Opcode::kAdd,   Opcode::kSub,
        Opcode::kAnd,  Opcode::kOr,   Opcode::kXor,   Opcode::kShl,
        Opcode::kShr,  Opcode::kSra,  Opcode::kMul,   Opcode::kSlt,
        Opcode::kSltu, Opcode::kAddi, Opcode::kAndi,  Opcode::kOri,
        Opcode::kXori, Opcode::kShli, Opcode::kShri,  Opcode::kLui,
        Opcode::kLw,   Opcode::kLh,   Opcode::kLb,    Opcode::kSw,
        Opcode::kSh,   Opcode::kSb,   Opcode::kBeq,   Opcode::kBne,
        Opcode::kBlt,  Opcode::kBge,  Opcode::kBltu,  Opcode::kBgeu,
        Opcode::kJal,  Opcode::kJalr, Opcode::kEcall, Opcode::kMret,
        Opcode::kSmc,  Opcode::kSret, Opcode::kCsrr,  Opcode::kCsrw,
        Opcode::kWfi,
    };
    return ops;
}

TEST(Encoding, EncodeDecodeRoundTripsEveryOpcodeAndOperandPattern) {
    // decode() then encode() must reproduce the exact word for every
    // defined opcode and every operand-bit pattern (rs2 and imm16
    // overlap by design, so the word is the ground truth).
    const std::uint32_t patterns[] = {0x000000, 0xffffff, 0xa5a5a5,
                                      0x5a5a5a, 0x123456, 0x00f000,
                                      0x008000, 0x007fff};
    for (const Opcode op : all_opcodes()) {
        for (const std::uint32_t low : patterns) {
            const std::uint32_t word =
                (static_cast<std::uint32_t>(op) << 24) | low;
            const Instruction insn = decode(word);
            EXPECT_EQ(insn.opcode, op);
            EXPECT_EQ(insn.rd, (low >> 20) & 0x0f);
            EXPECT_EQ(insn.rs1, (low >> 16) & 0x0f);
            EXPECT_EQ(insn.rs2, (low >> 12) & 0x0f);
            EXPECT_EQ(insn.imm, low & 0xffff);
            EXPECT_EQ(encode(insn), word) << opcode_name(op);
        }
    }
}

TEST(Encoding, SignedImmediateRoundTripsBoundaryValues) {
    for (const std::uint16_t imm :
         {std::uint16_t{0}, std::uint16_t{1}, std::uint16_t{0x7fff},
          std::uint16_t{0x8000}, std::uint16_t{0xffff}}) {
        const Instruction insn{Opcode::kAddi, 1, 2, 0, imm};
        const Instruction back = decode(encode(insn));
        EXPECT_EQ(back.imm, imm);
        EXPECT_EQ(back.simm(), static_cast<std::int16_t>(imm));
    }
}

TEST(Encoding, ValidityScanMatchesDefinedOpcodeSetExactly) {
    std::set<std::uint8_t> defined;
    for (const Opcode op : all_opcodes()) {
        defined.insert(static_cast<std::uint8_t>(op));
    }
    ASSERT_EQ(defined.size(), 41u);  // The enum holds 41 distinct opcodes.
    for (unsigned byte = 0; byte < 256; ++byte) {
        const std::uint32_t word = byte << 24 | 0x00345678;
        EXPECT_EQ(is_valid_opcode(word),
                  defined.count(static_cast<std::uint8_t>(byte)) != 0)
            << "opcode byte 0x" << std::hex << byte;
    }
}

TEST(Encoding, EveryOpcodeNameRoundTripsThroughLookup) {
    for (const Opcode op : all_opcodes()) {
        const std::string name = opcode_name(op);
        EXPECT_NE(name, "?");
        const auto back = opcode_from_name(name);
        ASSERT_TRUE(back.has_value()) << name;
        EXPECT_EQ(*back, op);
    }
    EXPECT_EQ(opcode_name(static_cast<Opcode>(0xff)), "?");
    EXPECT_FALSE(opcode_from_name("bogus").has_value());
}

/// One assembly statement per opcode with the operand syntax the
/// assembler documents, plus the exact instruction it must produce.
struct AsmCase {
    const char* source;
    Instruction expected;
};

TEST(Assembler, RoundTripsEveryMnemonicAgainstEncode) {
    // Labels resolve pc-relative immediates to 0 ("start" is the
    // statement's own address), so every case has one fixed encoding.
    const AsmCase cases[] = {
        {"nop", {Opcode::kNop, 0, 0, 0, 0}},
        {"halt", {Opcode::kHalt, 0, 0, 0, 0}},
        {"add r1, r2, r3", {Opcode::kAdd, 1, 2, 3, 3u << 12}},
        {"sub r4, r5, r6", {Opcode::kSub, 4, 5, 6, 6u << 12}},
        {"and r7, r8, r9", {Opcode::kAnd, 7, 8, 9, 9u << 12}},
        {"or r10, r11, r12", {Opcode::kOr, 10, 11, 12, 12u << 12}},
        {"xor r13, r14, r15", {Opcode::kXor, 13, 14, 15, 15u << 12}},
        {"shl r1, r2, r3", {Opcode::kShl, 1, 2, 3, 3u << 12}},
        {"shr r1, r2, r3", {Opcode::kShr, 1, 2, 3, 3u << 12}},
        {"sra r1, r2, r3", {Opcode::kSra, 1, 2, 3, 3u << 12}},
        {"mul r1, r2, r3", {Opcode::kMul, 1, 2, 3, 3u << 12}},
        {"slt r1, r2, r3", {Opcode::kSlt, 1, 2, 3, 3u << 12}},
        {"sltu r1, r2, r3", {Opcode::kSltu, 1, 2, 3, 3u << 12}},
        {"addi r1, r2, -2", {Opcode::kAddi, 1, 2, 0, 0xfffe}},
        {"andi r1, r2, 0xff", {Opcode::kAndi, 1, 2, 0, 0x00ff}},
        {"ori r1, r2, 0x80", {Opcode::kOri, 1, 2, 0, 0x0080}},
        {"xori r1, r2, 1", {Opcode::kXori, 1, 2, 0, 1}},
        {"shli r1, r2, 4", {Opcode::kShli, 1, 2, 0, 4}},
        {"shri r1, r2, 31", {Opcode::kShri, 1, 2, 0, 31}},
        {"lui r1, 0x1234", {Opcode::kLui, 1, 0, 0, 0x1234}},
        {"lw r1, r2, 8", {Opcode::kLw, 1, 2, 0, 8}},
        {"lh r1, r2, 2", {Opcode::kLh, 1, 2, 0, 2}},
        {"lb r1, r2, 1", {Opcode::kLb, 1, 2, 0, 1}},
        {"sw r1, r2, -4", {Opcode::kSw, 1, 2, 0, 0xfffc}},
        {"sh r1, r2, 6", {Opcode::kSh, 1, 2, 0, 6}},
        {"sb r1, r2, 3", {Opcode::kSb, 1, 2, 0, 3}},
        // Branch second comparand travels in rd; "start" is offset 0.
        {"beq r1, r2, start", {Opcode::kBeq, 2, 1, 0, 0}},
        {"bne r3, r4, start", {Opcode::kBne, 4, 3, 0, 0}},
        {"blt r5, r6, start", {Opcode::kBlt, 6, 5, 0, 0}},
        {"bge r7, r8, start", {Opcode::kBge, 8, 7, 0, 0}},
        {"bltu r9, r10, start", {Opcode::kBltu, 10, 9, 0, 0}},
        {"bgeu r11, r12, start", {Opcode::kBgeu, 12, 11, 0, 0}},
        {"jal lr, start", {Opcode::kJal, 14, 0, 0, 0}},
        {"jalr r0, r1, 4", {Opcode::kJalr, 0, 1, 0, 4}},
        {"ecall 3", {Opcode::kEcall, 0, 0, 0, 3}},
        {"mret", {Opcode::kMret, 0, 0, 0, 0}},
        {"smc 2", {Opcode::kSmc, 0, 0, 0, 2}},
        {"sret", {Opcode::kSret, 0, 0, 0, 0}},
        {"csrr r2, mcause", {Opcode::kCsrr, 2, 0, 0, kCsrMcause}},
        {"csrw mscratch, r5", {Opcode::kCsrw, 0, 5, 0, kCsrMscratch}},
        {"wfi", {Opcode::kWfi, 0, 0, 0, 0}},
    };
    std::set<Opcode> covered;
    for (const AsmCase& c : cases) {
        const Program p =
            assemble(std::string("start:\n    ") + c.source + "\n", 0);
        ASSERT_EQ(p.code.size(), 4u) << c.source;
        const std::uint32_t word =
            static_cast<std::uint32_t>(p.code[0]) |
            (static_cast<std::uint32_t>(p.code[1]) << 8) |
            (static_cast<std::uint32_t>(p.code[2]) << 16) |
            (static_cast<std::uint32_t>(p.code[3]) << 24);
        EXPECT_EQ(word, encode(c.expected)) << c.source;
        covered.insert(c.expected.opcode);
    }
    // The table above must stay exhaustive as the ISA grows.
    EXPECT_EQ(covered.size(), all_opcodes().size());
}

TEST(Assembler, PseudoInstructionsExpandToDocumentedSequences) {
    const Program p = assemble(R"(
    start:
        li   r1, 0x12345678
        mv   r2, r1
        call start
        j    start
        ret
    )",
                               0);
    auto word_at = [&](std::size_t i) {
        return decode(static_cast<std::uint32_t>(p.code[4 * i]) |
                      (static_cast<std::uint32_t>(p.code[4 * i + 1]) << 8) |
                      (static_cast<std::uint32_t>(p.code[4 * i + 2]) << 16) |
                      (static_cast<std::uint32_t>(p.code[4 * i + 3]) << 24));
    };
    // li = lui + ori.
    EXPECT_EQ(word_at(0).opcode, Opcode::kLui);
    EXPECT_EQ(word_at(0).imm, 0x1234);
    EXPECT_EQ(word_at(1).opcode, Opcode::kOri);
    EXPECT_EQ(word_at(1).imm, 0x5678);
    // mv = addi rd, rs, 0.
    EXPECT_EQ(word_at(2).opcode, Opcode::kAddi);
    EXPECT_EQ(word_at(2).imm, 0u);
    // call = jal lr, target.
    EXPECT_EQ(word_at(3).opcode, Opcode::kJal);
    EXPECT_EQ(word_at(3).rd, 14);
    // j = jal r0, target.
    EXPECT_EQ(word_at(4).opcode, Opcode::kJal);
    EXPECT_EQ(word_at(4).rd, 0);
    // ret = jalr r0, lr, 0.
    EXPECT_EQ(word_at(5).opcode, Opcode::kJalr);
    EXPECT_EQ(word_at(5).rd, 0);
    EXPECT_EQ(word_at(5).rs1, 14);
    EXPECT_EQ(word_at(5).imm, 0u);
}

TEST(Assembler, RejectsMalformedStatements) {
    EXPECT_THROW(assemble("add r1, r2\n"), IsaError);       // Arity.
    EXPECT_THROW(assemble("add r1, r2, r16\n"), IsaError);  // Register.
    EXPECT_THROW(assemble("beq r1, r2, nowhere\n"), IsaError);  // Label.
    EXPECT_THROW(assemble("frobnicate r1\n"), IsaError);  // Mnemonic.
    EXPECT_THROW(assemble("csrw bogus, r1\n"), IsaError);  // CSR name.
}

TEST_F(CpuFixture, EveryUndefinedOpcodeByteTrapsAsIllegalInstruction) {
    // Spot-check a spread of undefined opcode bytes end to end: the
    // word decodes (structurally total) but execution must trap.
    for (const unsigned byte : {0x02u, 0x0fu, 0x1bu, 0x27u, 0x36u, 0x48u,
                                0x57u, 0x80u, 0xc3u, 0xffu}) {
        const std::uint32_t word = (byte << 24) | 0x00123456;
        ASSERT_FALSE(is_valid_opcode(word));
        char line[32];
        std::snprintf(line, sizeof line, ".word 0x%08x\n", word);
        run(line);
        EXPECT_TRUE(cpu.halted()) << byte;
        EXPECT_EQ(cpu.csr(kCsrMcause),
                  static_cast<std::uint32_t>(TrapCause::kIllegalInstruction))
            << "opcode byte 0x" << std::hex << byte;
    }
}

}  // namespace
}  // namespace cres::isa
