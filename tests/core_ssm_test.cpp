// SSM-side tests: evidence log chain/seal, risk register, policy DSL,
// the security manager's detect->respond->recover flow, isolation
// ablation, response manager actions, recovery and degradation.
#include <gtest/gtest.h>

#include "core/registry.h"
#include "core/response/response.h"
#include "core/ssm/ssm.h"
#include "isa/assembler.h"
#include "mem/ram.h"
#include "util/error.h"

namespace cres::core {
namespace {

Bytes key() { return to_bytes("evidence-seal-key"); }

MonitorEvent event(sim::Cycle at, EventCategory category,
                   EventSeverity severity, std::string resource = "res",
                   std::string detail = "detail") {
    return MonitorEvent{at, "test-monitor", category, severity,
                        std::move(resource), std::move(detail), 0, 0,
                        std::nullopt};
}

TEST(Evidence, ChainVerifies) {
    EvidenceLog log(key());
    log.append(1, "event", "first");
    log.append(2, "event", "second", Bytes{1, 2, 3});
    log.append(3, "action", "isolated");
    EXPECT_EQ(log.size(), 3u);
    EXPECT_TRUE(log.verify_chain());
}

TEST(Evidence, EmptyChainVerifies) {
    EvidenceLog log(key());
    EXPECT_TRUE(log.verify_chain());
    EXPECT_EQ(log.head(), crypto::Hash256{});
}

TEST(Evidence, TamperBreaksChain) {
    EvidenceLog log(key());
    log.append(1, "event", "breach observed");
    log.append(2, "event", "exfil observed");
    log.tamper_detail(0, "nothing happened here");
    EXPECT_FALSE(log.verify_chain());
}

TEST(Evidence, SealDetectsTruncation) {
    EvidenceLog log(key());
    log.append(1, "event", "a");
    log.append(2, "event", "b");
    const EvidenceSeal seal = log.seal();
    EXPECT_TRUE(EvidenceLog::verify_seal(log, seal, key()));

    EvidenceLog shorter(key());
    shorter.append(1, "event", "a");
    EXPECT_FALSE(EvidenceLog::verify_seal(shorter, seal, key()));
}

TEST(Evidence, SealDetectsWipe) {
    EvidenceLog log(key());
    log.append(1, "event", "breach");
    const EvidenceSeal seal = log.seal();
    log.wipe();
    EXPECT_FALSE(EvidenceLog::verify_seal(log, seal, key()));
}

TEST(Evidence, SealWithWrongKeyRejected) {
    EvidenceLog log(key());
    log.append(1, "event", "a");
    const EvidenceSeal seal = log.seal();
    EXPECT_FALSE(EvidenceLog::verify_seal(log, seal, to_bytes("other")));
}

TEST(Evidence, AppendAfterSealStillVerifies) {
    // The seal pins a prefix; honest appends extend past it.
    EvidenceLog log(key());
    log.append(1, "event", "a");
    const EvidenceSeal seal = log.seal();
    log.append(2, "event", "b");
    EXPECT_TRUE(EvidenceLog::verify_seal(log, seal, key()));
}

TEST(Evidence, EmptyKeyRejected) {
    EXPECT_THROW(EvidenceLog(Bytes{}), Error);
}

TEST(Risk, ScoreGrowsWithIncidents) {
    RiskRegister risks;
    risks.add_asset("actuator", AssetKind::kPeripheral, 5, 2);
    const double base = risks.risk_score("actuator");
    risks.record_incident("actuator");
    risks.record_incident("actuator");
    EXPECT_GT(risks.risk_score("actuator"), base);
}

TEST(Risk, UnknownResourceAutoRegistered) {
    RiskRegister risks;
    risks.record_incident("mystery");
    EXPECT_TRUE(risks.contains("mystery"));
    EXPECT_GT(risks.risk_score("mystery"), 0.0);
}

TEST(Risk, RankedOrdersByScore) {
    RiskRegister risks;
    risks.add_asset("low", AssetKind::kTask, 1, 1);
    risks.add_asset("high", AssetKind::kKey, 5, 5);
    const auto ranked = risks.ranked();
    ASSERT_EQ(ranked.size(), 2u);
    EXPECT_EQ(ranked[0].name, "high");
}

TEST(Risk, ScoresClamped) {
    RiskRegister risks;
    risks.add_asset("a", AssetKind::kTask, 99, 0);
    EXPECT_EQ(risks.assets().at("a").criticality, 5u);
    EXPECT_EQ(risks.assets().at("a").exposure, 1u);
}

TEST(Policy, DslParsesRules) {
    const PolicyEngine engine = PolicyEngine::parse(R"(
; comment
rule cfi-hijack: category=control-flow severity>=critical -> kill-task, restart-task
rule exfil: category=data-flow count=2 window=5000 -> isolate-resource
rule anything-critical: severity>=critical -> alert-operator
)");
    EXPECT_EQ(engine.size(), 3u);
    EXPECT_EQ(engine.rules()[0].name, "cfi-hijack");
    EXPECT_EQ(engine.rules()[0].actions.size(), 2u);
    EXPECT_EQ(engine.rules()[1].threshold, 2u);
    EXPECT_EQ(engine.rules()[1].window, 5000u);
    EXPECT_FALSE(engine.rules()[2].category.has_value());
}

TEST(Policy, DslRejectsBadInput) {
    EXPECT_THROW(PolicyEngine::parse("rule x: severity>=alert\n"),
                 PolicyError);  // No '->'.
    EXPECT_THROW(PolicyEngine::parse("rule x: -> frobnicate\n"), PolicyError);
    EXPECT_THROW(PolicyEngine::parse("rule x: category=nope -> kill-task\n"),
                 PolicyError);
    EXPECT_THROW(PolicyEngine::parse("rule x: severity>=extreme -> kill-task\n"),
                 PolicyError);
    EXPECT_THROW(PolicyEngine::parse("bogus line -> kill-task\n"),
                 PolicyError);
    EXPECT_THROW(PolicyEngine::parse("rule x: count=abc -> kill-task\n"),
                 PolicyError);
    EXPECT_THROW(PolicyEngine::parse("rule x: window=zz -> kill-task\n"),
                 PolicyError);
}

TEST(Policy, MatchingRespectsConditions) {
    PolicyRule rule;
    rule.name = "r";
    rule.category = EventCategory::kControlFlow;
    rule.min_severity = EventSeverity::kAlert;
    rule.resource_prefix = "cpu*";
    rule.actions = {ResponseAction::kKillTask};

    EXPECT_TRUE(rule.matches(event(0, EventCategory::kControlFlow,
                                   EventSeverity::kCritical, "cpu0")));
    EXPECT_FALSE(rule.matches(event(0, EventCategory::kMemory,
                                    EventSeverity::kCritical, "cpu0")));
    EXPECT_FALSE(rule.matches(event(0, EventCategory::kControlFlow,
                                    EventSeverity::kInfo, "cpu0")));
    EXPECT_FALSE(rule.matches(event(0, EventCategory::kControlFlow,
                                    EventSeverity::kCritical, "dma0")));
}

TEST(Policy, ExactResourceMatch) {
    PolicyRule rule;
    rule.name = "r";
    rule.resource_prefix = "nic0";
    rule.actions = {ResponseAction::kLogOnly};
    EXPECT_TRUE(rule.matches(event(0, EventCategory::kNetwork,
                                   EventSeverity::kAlert, "nic0")));
    EXPECT_FALSE(rule.matches(event(0, EventCategory::kNetwork,
                                    EventSeverity::kAlert, "nic01")));
}

TEST(Policy, WindowedThreshold) {
    PolicyEngine engine;
    PolicyRule rule;
    rule.name = "burst";
    rule.threshold = 3;
    rule.window = 100;
    rule.min_severity = EventSeverity::kAdvisory;
    rule.actions = {ResponseAction::kIsolateResource};
    engine.add_rule(rule);

    EXPECT_TRUE(engine.evaluate(
        event(10, EventCategory::kMemory, EventSeverity::kAlert)).empty());
    EXPECT_TRUE(engine.evaluate(
        event(20, EventCategory::kMemory, EventSeverity::kAlert)).empty());
    // Third within the window fires.
    EXPECT_EQ(engine.evaluate(
        event(30, EventCategory::kMemory, EventSeverity::kAlert)).size(), 1u);
    // Counter cleared after firing.
    EXPECT_TRUE(engine.evaluate(
        event(40, EventCategory::kMemory, EventSeverity::kAlert)).empty());
}

TEST(Policy, WindowExpiryForgetsOldEvents) {
    PolicyEngine engine;
    PolicyRule rule;
    rule.name = "burst";
    rule.threshold = 2;
    rule.window = 50;
    rule.actions = {ResponseAction::kLogOnly};
    engine.add_rule(rule);

    (void)engine.evaluate(event(0, EventCategory::kMemory,
                                EventSeverity::kAlert));
    // 200 cycles later: the first event fell out of the window.
    EXPECT_TRUE(engine.evaluate(event(200, EventCategory::kMemory,
                                      EventSeverity::kAlert)).empty());
}

TEST(Policy, RuleValidation) {
    PolicyEngine engine;
    PolicyRule no_actions;
    no_actions.name = "empty";
    EXPECT_THROW(engine.add_rule(no_actions), PolicyError);
    PolicyRule zero_threshold;
    zero_threshold.name = "z";
    zero_threshold.threshold = 0;
    zero_threshold.actions = {ResponseAction::kLogOnly};
    EXPECT_THROW(engine.add_rule(zero_threshold), PolicyError);
}

/// Scripted executor for SSM-only tests.
class FakeExecutor : public ResponseExecutor {
public:
    std::string execute(ResponseAction action,
                        const MonitorEvent& trigger) override {
        executed.emplace_back(action, trigger.resource);
        return "ok";
    }
    std::vector<std::pair<ResponseAction, std::string>> executed;
};

class SsmFixture : public ::testing::Test {
protected:
    SsmFixture() {
        SsmConfig config;
        config.physically_isolated = true;
        config.poll_interval = 10;
        config.seal_key = key();
        ssm = std::make_unique<SystemSecurityManager>(sim, config);
        ssm->set_response_executor(&executor);
        sim.add_tickable(ssm.get());
    }

    void install_policy(const std::string& dsl) {
        ssm->set_policy(PolicyEngine::parse(dsl));
    }

    sim::Simulator sim;
    FakeExecutor executor;
    std::unique_ptr<SystemSecurityManager> ssm;
};

TEST_F(SsmFixture, EventsProcessedAtPollInterval) {
    install_policy("rule r: severity>=critical -> kill-task\n");
    sim.run_for(5);
    ssm->submit(event(sim.now(), EventCategory::kControlFlow,
                      EventSeverity::kCritical, "cpu0"));
    EXPECT_EQ(ssm->events_processed(), 0u);  // Not polled yet.
    sim.run_for(20);
    EXPECT_EQ(ssm->events_processed(), 1u);
    ASSERT_EQ(executor.executed.size(), 1u);
    EXPECT_EQ(executor.executed[0].first, ResponseAction::kKillTask);
    EXPECT_EQ(ssm->queue_depth(), 0u);
}

TEST_F(SsmFixture, DetectionLatencyBounded) {
    install_policy("rule r: severity>=alert -> log-only\n");
    ssm->submit(event(0, EventCategory::kMemory, EventSeverity::kAlert));
    sim.run_for(30);
    ASSERT_EQ(ssm->dispatches().size(), 1u);
    EXPECT_LE(ssm->dispatches()[0].latency(), 20u);
}

TEST_F(SsmFixture, HealthEscalatesWithSeverity) {
    EXPECT_EQ(ssm->health(), HealthState::kHealthy);
    ssm->submit(event(0, EventCategory::kMemory, EventSeverity::kAlert));
    sim.run_for(20);
    EXPECT_EQ(ssm->health(), HealthState::kSuspicious);
    ssm->submit(event(sim.now(), EventCategory::kMemory,
                      EventSeverity::kCritical));
    sim.run_for(20);
    EXPECT_EQ(ssm->health(), HealthState::kCompromised);
}

TEST_F(SsmFixture, RespondAndRecoverFlow) {
    install_policy("rule r: severity>=critical -> isolate-resource\n");
    ssm->submit(event(0, EventCategory::kDataFlow, EventSeverity::kCritical,
                      "nic0"));
    sim.run_for(20);
    EXPECT_EQ(ssm->health(), HealthState::kResponding);
    ssm->notify_recovery_started(sim.now());
    EXPECT_EQ(ssm->health(), HealthState::kRecovering);
    ssm->notify_recovery_complete(sim.now(), /*degraded=*/true);
    EXPECT_EQ(ssm->health(), HealthState::kDegraded);
    ssm->notify_full_service(sim.now());
    EXPECT_EQ(ssm->health(), HealthState::kHealthy);
}

TEST_F(SsmFixture, EvidenceRecordsEventsDecisionsActionsStates) {
    install_policy("rule r: severity>=critical -> zeroise-keys\n");
    ssm->submit(event(0, EventCategory::kMemory, EventSeverity::kCritical,
                      "keys"));
    sim.run_for(20);
    const auto& records = ssm->evidence().records();
    bool saw_event = false, saw_decision = false, saw_action = false,
         saw_state = false;
    for (const auto& r : records) {
        if (r.kind == "event") saw_event = true;
        if (r.kind == "decision") saw_decision = true;
        if (r.kind == "action") saw_action = true;
        if (r.kind == "state") saw_state = true;
    }
    EXPECT_TRUE(saw_event);
    EXPECT_TRUE(saw_decision);
    EXPECT_TRUE(saw_action);
    EXPECT_TRUE(saw_state);
    EXPECT_TRUE(ssm->evidence().verify_chain());
}

TEST_F(SsmFixture, RiskRegisterTracksIncidents) {
    ssm->risks().add_asset("nic0", AssetKind::kChannel, 4, 5);
    ssm->submit(event(0, EventCategory::kNetwork, EventSeverity::kAlert,
                      "nic0"));
    sim.run_for(20);
    EXPECT_EQ(ssm->risks().assets().at("nic0").incidents, 1u);
}

TEST_F(SsmFixture, InfoEventsDoNotRaiseRisk) {
    ssm->submit(event(0, EventCategory::kTiming, EventSeverity::kInfo,
                      "task"));
    sim.run_for(20);
    EXPECT_FALSE(ssm->risks().contains("task"));
}

TEST_F(SsmFixture, IsolatedSsmSurvivesCompromiseAttempt) {
    EXPECT_FALSE(ssm->attempt_compromise("kernel-exploit"));
    EXPECT_FALSE(ssm->disabled());
    // The attempt itself left evidence.
    bool recorded = false;
    for (const auto& r : ssm->evidence().records()) {
        if (r.detail.find("compromise attempt") != std::string::npos) {
            recorded = true;
        }
    }
    EXPECT_TRUE(recorded);
}

TEST_F(SsmFixture, FirstDispatchQuery) {
    install_policy("rule r: severity>=alert -> log-only\n");
    ssm->submit(event(5, EventCategory::kMemory, EventSeverity::kAlert));
    ssm->submit(event(7, EventCategory::kNetwork, EventSeverity::kAlert));
    sim.run_for(30);
    const auto d = ssm->first_dispatch_of(EventCategory::kNetwork);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->event.at, 7u);
    EXPECT_FALSE(
        ssm->first_dispatch_of(EventCategory::kControlFlow).has_value());
}

TEST_F(SsmFixture, HealthReportVerifies) {
    ssm->submit(event(0, EventCategory::kMemory, EventSeverity::kAlert));
    sim.run_for(20);
    const auto report = ssm->health_report();
    EXPECT_TRUE(SystemSecurityManager::verify_health_report(report, key()));
    auto forged = report;
    forged.state = HealthState::kHealthy;
    forged.events_processed = 0;
    EXPECT_FALSE(SystemSecurityManager::verify_health_report(forged, key()));
}

TEST(SsmShared, SharedSsmDiesWithKernel) {
    sim::Simulator sim;
    SsmConfig config;
    config.physically_isolated = false;  // TEE-style shared resources.
    config.seal_key = key();
    SystemSecurityManager ssm(sim, config);
    sim.add_tickable(&ssm);

    ssm.submit(event(0, EventCategory::kMemory, EventSeverity::kCritical));
    sim.run_for(20);
    EXPECT_GT(ssm.evidence().size(), 0u);

    EXPECT_TRUE(ssm.attempt_compromise("kernel-exploit"));
    EXPECT_TRUE(ssm.disabled());
    EXPECT_EQ(ssm.evidence().size(), 0u);  // Evidence destroyed.

    // Dead SSM processes nothing further.
    ssm.submit(event(sim.now(), EventCategory::kMemory,
                     EventSeverity::kCritical));
    sim.run_for(20);
    EXPECT_EQ(ssm.queue_depth(), 0u);
    EXPECT_EQ(ssm.events_processed(), 1u);
}

TEST(SsmConfigTest, ZeroPollIntervalRejected) {
    sim::Simulator sim;
    SsmConfig config;
    config.seal_key = key();
    config.poll_interval = 0;
    EXPECT_THROW(SystemSecurityManager(sim, config), Error);
}

class ResponseFixture : public ::testing::Test {
protected:
    ResponseFixture() : ram("ram", 0x1000), cpu("cpu0", bus) {
        bus.map(mem::RegionConfig{"ram", 0, 0x1000, false, false}, ram);
        bus.map(mem::RegionConfig{"periph", 0x8000, 0x100, false, false},
                periph_backing);
        keystore.install("root", to_bytes("k"), crypto::KeyAccess::kSsmOnly);
        recovery = std::make_unique<RecoveryManager>(cpu, ram);

        degradation.register_service("telemetry", false,
                                     [this](bool on) { telemetry_on = on; });
        degradation.register_service("control", true,
                                     [this](bool on) { control_on = on; });

        ctx.bus = &bus;
        ctx.cpu = &cpu;
        ctx.keystore = &keystore;
        ctx.recovery = recovery.get();
        ctx.degradation = &degradation;
        ctx.sim = &sim;
        ctx.operator_alert = [this](const std::string& m) {
            alerts.push_back(m);
        };
        ctx.system_reset = [this] { ++resets; };
        ctx.rate_limiter = [](const std::string& r) {
            return "rate-limited " + r;
        };
        arm = std::make_unique<ActiveResponseManager>(ctx);
    }

    MonitorEvent trigger(const std::string& resource) {
        return MonitorEvent{sim.now(), "m", EventCategory::kMemory,
                            EventSeverity::kCritical, resource, "d", 0, 0,
                            std::nullopt};
    }

    sim::Simulator sim;
    mem::Bus bus;
    mem::Ram ram;
    mem::Ram periph_backing{"periph", 0x100};
    isa::Cpu cpu;
    crypto::KeyStore keystore;
    std::unique_ptr<RecoveryManager> recovery;
    DegradationManager degradation;
    ResponseContext ctx;
    std::unique_ptr<ActiveResponseManager> arm;
    std::vector<std::string> alerts;
    int resets = 0;
    bool telemetry_on = true;
    bool control_on = true;
};

TEST_F(ResponseFixture, IsolateResourceFencesBusRegion) {
    const std::string outcome =
        arm->execute(ResponseAction::kIsolateResource, trigger("periph"));
    EXPECT_NE(outcome.find("fenced"), std::string::npos);
    EXPECT_TRUE(bus.is_isolated("periph"));
}

TEST_F(ResponseFixture, IsolateUnknownRegionReportsIt) {
    const std::string outcome =
        arm->execute(ResponseAction::kIsolateResource, trigger("ghost"));
    EXPECT_NE(outcome.find("no such region"), std::string::npos);
}

TEST_F(ResponseFixture, KillTaskHaltsCpu) {
    cpu.reset(0);
    EXPECT_FALSE(cpu.halted());
    (void)arm->execute(ResponseAction::kKillTask, trigger("cpu0"));
    EXPECT_TRUE(cpu.halted());
}

TEST_F(ResponseFixture, ZeroiseWipesKeys) {
    EXPECT_EQ(keystore.live_count(), 1u);
    const std::string outcome =
        arm->execute(ResponseAction::kZeroiseKeys, trigger("keys"));
    EXPECT_EQ(keystore.live_count(), 0u);
    EXPECT_NE(outcome.find("1"), std::string::npos);
}

TEST_F(ResponseFixture, CheckpointRestoreRoundTrip) {
    const isa::Program p = isa::assemble(R"(
        addi r1, r0, 7
        halt
    )");
    ram.load(0, p.code);
    cpu.reset(0);
    while (!cpu.halted()) cpu.step();
    EXPECT_EQ(cpu.reg(1), 7u);

    recovery->take_checkpoint(sim.now());
    // "Malware" trashes memory and registers.
    ram.fill(0xff);
    cpu.set_reg(1, 0xbad);

    const std::string outcome =
        arm->execute(ResponseAction::kRestoreCheckpoint, trigger("cpu0"));
    EXPECT_NE(outcome.find("restored"), std::string::npos);
    EXPECT_EQ(cpu.reg(1), 7u);
    EXPECT_EQ(ram.dump(0, p.code.size()), p.code);
    EXPECT_FALSE(cpu.halted());
    EXPECT_EQ(recovery->restores(), 1u);
}

TEST_F(ResponseFixture, RestoreWithoutCheckpointUnavailable) {
    const std::string outcome =
        arm->execute(ResponseAction::kRestoreCheckpoint, trigger("cpu0"));
    EXPECT_NE(outcome.find("unavailable"), std::string::npos);
}

TEST_F(ResponseFixture, DegradeShedsNonCritical) {
    const std::string outcome =
        arm->execute(ResponseAction::kDegrade, trigger("soc"));
    EXPECT_NE(outcome.find("shed 1"), std::string::npos);
    EXPECT_FALSE(telemetry_on);
    EXPECT_TRUE(control_on);
    EXPECT_TRUE(degradation.degraded());
    degradation.restore();
    EXPECT_TRUE(telemetry_on);
}

TEST_F(ResponseFixture, AlertReachesOperator) {
    (void)arm->execute(ResponseAction::kAlertOperator, trigger("x"));
    ASSERT_EQ(alerts.size(), 1u);
}

TEST_F(ResponseFixture, ResetInvokesLine) {
    (void)arm->execute(ResponseAction::kResetSystem, trigger("x"));
    EXPECT_EQ(resets, 1);
}

TEST_F(ResponseFixture, RateLimitUsesHook) {
    const std::string outcome =
        arm->execute(ResponseAction::kRateLimitPeripheral, trigger("breaker"));
    EXPECT_EQ(outcome, "rate-limited breaker");
}

TEST_F(ResponseFixture, MissingFacilitiesReportUnavailable) {
    ActiveResponseManager bare{ResponseContext{}};
    EXPECT_NE(bare.execute(ResponseAction::kIsolateResource, trigger("r"))
                  .find("unavailable"),
              std::string::npos);
    EXPECT_NE(bare.execute(ResponseAction::kZeroiseKeys, trigger("r"))
                  .find("unavailable"),
              std::string::npos);
    EXPECT_NE(bare.execute(ResponseAction::kRollbackFirmware, trigger("r"))
                  .find("unavailable"),
              std::string::npos);
}

TEST_F(ResponseFixture, RecordsAccumulate) {
    (void)arm->execute(ResponseAction::kLogOnly, trigger("a"));
    (void)arm->execute(ResponseAction::kKillTask, trigger("b"));
    EXPECT_EQ(arm->total(), 2u);
    EXPECT_EQ(arm->count(ResponseAction::kKillTask), 1u);
    EXPECT_EQ(arm->records()[1].resource, "b");
}

TEST(Registry, CoversAllFiveCsfFunctions) {
    const auto functions = covered_functions();
    EXPECT_EQ(functions.size(), 5u);
    const std::set<std::string> expected = {"identify", "protect", "detect",
                                            "respond", "recover"};
    EXPECT_EQ(std::set<std::string>(functions.begin(), functions.end()),
              expected);
    EXPECT_GE(capability_registry().size(), 20u);
}

}  // namespace
}  // namespace cres::core
