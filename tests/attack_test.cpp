// Attack-library tests: each attack's mechanics, ground-truth
// accounting, and the specific monitor that catches it.
#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "platform/scenario.h"

namespace cres::attack {
namespace {

platform::ScenarioConfig quick_config(bool resilient, std::uint64_t seed) {
    platform::ScenarioConfig config;
    config.node.name = "t";
    config.node.resilient = resilient;
    config.warmup = 15000;
    config.horizon = 90000;
    config.seed = seed;
    return config;
}

TEST(AttackMeta, NamesAndMechanismsNonEmpty) {
    platform::Scenario s(quick_config(false, 1));
    std::vector<std::unique_ptr<Attack>> attacks;
    attacks.push_back(std::make_unique<StackSmashAttack>());
    attacks.push_back(std::make_unique<CodeInjectionAttack>());
    attacks.push_back(std::make_unique<DmaExfilAttack>());
    attacks.push_back(std::make_unique<BusTamperAttack>());
    attacks.push_back(std::make_unique<SensorSpoofAttack>());
    attacks.push_back(std::make_unique<ReplayAttack>(s.link(), true));
    attacks.push_back(std::make_unique<MitmTamperAttack>(s.link()));
    attacks.push_back(std::make_unique<TaskHangAttack>());
    attacks.push_back(std::make_unique<GlitchAttack>());
    attacks.push_back(std::make_unique<SsmKillAttack>());
    attacks.push_back(std::make_unique<BusProbeAttack>());
    for (const auto& a : attacks) {
        EXPECT_FALSE(a->name().empty());
        EXPECT_FALSE(a->mechanism().empty());
        EXPECT_FALSE(a->succeeded());  // Nothing launched yet.
    }
}

TEST(StackSmashMechanics, PivotsPcIntoGadgetOnPassive) {
    platform::Scenario scenario(quick_config(false, 3));
    StackSmashAttack attack;
    (void)scenario.run(&attack, 20000);
    EXPECT_TRUE(attack.succeeded());
    // The pc sits inside the gadget's spam loop at the end.
    const mem::Addr pc = scenario.node().cpu.pc();
    EXPECT_GE(pc, platform::gadget_origin());
    EXPECT_LT(pc, platform::gadget_origin() + 0x200);
}

TEST(StackSmashMechanics, GadgetKeepsWatchdogFed) {
    platform::Scenario scenario(quick_config(false, 3));
    StackSmashAttack attack;
    const auto r = scenario.run(&attack, 20000);
    // The gadget kicks the watchdog: the passive platform never reboots
    // and so never even gets its one passive countermeasure.
    EXPECT_EQ(r.reboots, 0u);
}

TEST(CodeInjectionMechanics, MemoryMonitorSeesTextWrite) {
    platform::Scenario scenario(quick_config(true, 4));
    CodeInjectionAttack attack;
    (void)scenario.run(&attack, 20000);
    // The injected jump lands in the protected text range.
    bool code_tamper_event = false;
    for (const auto& d : scenario.node().ssm->dispatches()) {
        if (d.event.category == core::EventCategory::kMemory &&
            d.event.severity == core::EventSeverity::kCritical) {
            code_tamper_event = true;
        }
    }
    EXPECT_TRUE(code_tamper_event);
}

TEST(DmaExfilMechanics, TransfersSecretOnPassive) {
    platform::Scenario scenario(quick_config(false, 5));
    DmaExfilAttack attack;
    (void)scenario.run(&attack, 20000);
    EXPECT_TRUE(attack.succeeded());
    EXPECT_GE(scenario.node().dma.bytes_transferred(),
              platform::kSecretSize);
}

TEST(DmaExfilMechanics, IsolationStopsTransferOnResilient) {
    platform::Scenario scenario(quick_config(true, 5));
    DmaExfilAttack attack;
    const auto r = scenario.run(&attack, 20000);
    EXPECT_TRUE(r.detected);
    // The NIC region got fenced before the staged frame was flushed.
    EXPECT_EQ(r.leaked_bytes, 0u);
}

TEST(BusTamperMechanics, ConfigMonitorCatchesDrift) {
    platform::Scenario scenario(quick_config(true, 6));
    BusTamperAttack attack;
    (void)scenario.run(&attack, 20000);
    EXPECT_GE(scenario.node().config_monitor->drifts_detected(), 1u);
}

TEST(BusTamperMechanics, PassiveReadsWholeKey) {
    platform::Scenario scenario(quick_config(false, 6));
    BusTamperAttack attack;
    (void)scenario.run(&attack, 20000);
    EXPECT_EQ(attack.key_bytes_read(), 32u);
}

TEST(SensorSpoofMechanics, TruthUnchanged) {
    platform::Scenario scenario(quick_config(false, 7));
    SensorSpoofAttack attack(500.0);
    (void)scenario.run(&attack, 20000);
    EXPECT_TRUE(scenario.node().sensor.spoofed());
    // The physical truth is still nominal; only the reading lies.
    EXPECT_NEAR(scenario.node().sensor.truth(50000), 50.0, 3.0);
    EXPECT_NEAR(scenario.node().sensor.value(), 500.0, 1.0);
}

TEST(GlitchMechanics, TransientAndDetected) {
    platform::Scenario scenario(quick_config(true, 8));
    GlitchAttack attack(0.9, 300);
    const auto r = scenario.run(&attack, 20000);
    EXPECT_TRUE(r.detected);
    // Voltage is back to nominal at the end.
    EXPECT_NEAR(scenario.node().power.voltage(), 3.3, 0.01);
    EXPECT_GE(scenario.node().environment_monitor->excursions(), 1u);
}

TEST(TaskHangMechanics, TimingMonitorCountsMiss) {
    platform::Scenario scenario(quick_config(true, 9));
    TaskHangAttack attack;
    (void)scenario.run(&attack, 20000);
    EXPECT_GE(scenario.node().timing_monitor->missed_deadlines(
                  "control-loop"),
              1u);
}

TEST(ReplayMechanics, VictimSelectsCorrectDirection) {
    platform::Scenario scenario(quick_config(true, 10));
    ReplayAttack attack(scenario.link(), /*victim_is_a=*/true);
    (void)scenario.run(&attack, 20000);
    EXPECT_TRUE(attack.succeeded());
    // The attack hammers the captured frame three times (one stale
    // frame is advisory-grade; the burst is what raises the alert).
    EXPECT_EQ(scenario.node().channel->rejected_replay(), 3u);
}

TEST(MitmMechanics, StopRestoresCleanTraffic) {
    platform::Scenario scenario(quick_config(false, 11));
    auto& node = scenario.node();
    MitmTamperAttack attack(scenario.link());
    attack.launch(node, 100);
    node.run(200);

    // While the tap is live, frames arrive modified.
    scenario.peer_nic().send_frame(Bytes(20, 0xaa));
    const auto tampered_frame = node.nic.receive_frame();
    ASSERT_TRUE(tampered_frame.has_value());
    EXPECT_NE((*tampered_frame)[12], 0xaa);
    EXPECT_TRUE(attack.succeeded());

    attack.stop();
    scenario.peer_nic().send_frame(Bytes(20, 0xaa));
    const auto clean_frame = node.nic.receive_frame();
    ASSERT_TRUE(clean_frame.has_value());
    EXPECT_EQ((*clean_frame)[12], 0xaa);
}

TEST(BusProbeMechanics, GeneratesDecodeErrors) {
    platform::Scenario scenario(quick_config(true, 12));
    BusProbeAttack attack;
    (void)scenario.run(&attack, 20000);
    bool probe_alert = false;
    for (const auto& d : scenario.node().ssm->dispatches()) {
        if (d.event.category == core::EventCategory::kBusViolation) {
            probe_alert = true;
        }
    }
    EXPECT_TRUE(probe_alert);
}

TEST(SsmKillMechanics, IsolatedAttemptLeavesEvidence) {
    platform::Scenario scenario(quick_config(true, 13));
    SsmKillAttack attack;
    (void)scenario.run(&attack, 20000);
    EXPECT_FALSE(attack.succeeded());
    bool evidenced = false;
    for (const auto& r : scenario.node().ssm->evidence().records()) {
        if (r.detail.find("compromise attempt") != std::string::npos) {
            evidenced = true;
        }
    }
    EXPECT_TRUE(evidenced);
}

// Property sweep: the resilient platform detects the full attack board
// across seeds (no flaky blind spots).
class DetectionSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(DetectionSweep, ResilientDetects) {
    const auto [attack_id, seed] = GetParam();
    platform::Scenario scenario(quick_config(true, seed));
    std::unique_ptr<Attack> attack;
    switch (attack_id) {
        case 0: attack = std::make_unique<StackSmashAttack>(); break;
        case 1: attack = std::make_unique<DmaExfilAttack>(); break;
        case 2: attack = std::make_unique<BusTamperAttack>(); break;
        case 3: attack = std::make_unique<SensorSpoofAttack>(); break;
        case 4: attack = std::make_unique<TaskHangAttack>(); break;
        default: attack = std::make_unique<GlitchAttack>(); break;
    }
    const auto r = scenario.run(attack.get(), 20000);
    EXPECT_TRUE(r.detected) << "attack_id=" << attack_id;
    EXPECT_TRUE(r.evidence_chain_ok);
}

INSTANTIATE_TEST_SUITE_P(
    Board, DetectionSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(201, 202, 203)));

}  // namespace
}  // namespace cres::attack
