// Integration tests: full scenarios on the passive baseline vs the
// resilient platform, under the attack library. These validate the
// paper's central claims end to end:
//   - the passive platform leaks, takes physical damage, loses
//     evidence, and at best reboots;
//   - the resilient platform detects, responds, recovers, keeps the
//     critical service alive and preserves a verifiable evidence chain.
#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "boot/image.h"
#include "platform/scenario.h"

namespace cres::platform {
namespace {

ScenarioConfig make_config(bool resilient) {
    ScenarioConfig config;
    config.node.name = resilient ? "resilient0" : "passive0";
    config.node.resilient = resilient;
    config.warmup = 20000;
    config.horizon = 120000;
    config.seed = 7;
    return config;
}

TEST(CleanRun, ResilientServicesRunWithoutFalsePositives) {
    Scenario scenario(make_config(true));
    const ScenarioResult r = scenario.run(nullptr);

    EXPECT_GT(r.control_iterations, 100u);
    EXPECT_GT(r.telemetry_frames, 100u);
    EXPECT_EQ(r.reboots, 0u);
    EXPECT_EQ(r.leaked_bytes, 0u);
    EXPECT_EQ(r.unsafe_commands, 0u);
    // No policy rule should fire on healthy behaviour.
    EXPECT_EQ(r.responses_executed, 0u);
    EXPECT_TRUE(r.evidence_chain_ok);
    EXPECT_EQ(scenario.node().ssm->health(), core::HealthState::kHealthy);
}

TEST(CleanRun, PassiveBaselineRunsTheSameWorkload) {
    Scenario scenario(make_config(false));
    const ScenarioResult r = scenario.run(nullptr);
    EXPECT_GT(r.control_iterations, 100u);
    EXPECT_EQ(r.reboots, 0u);
    EXPECT_EQ(r.leaked_bytes, 0u);
}

TEST(CleanRun, MonitoringOverheadIsBounded) {
    Scenario passive(make_config(false));
    Scenario resilient(make_config(true));
    const auto rp = passive.run(nullptr);
    const auto rr = resilient.run(nullptr);
    // The monitors live beside the pipeline, not in it: the workload
    // must make essentially identical progress.
    const double ratio = static_cast<double>(rr.control_iterations) /
                         static_cast<double>(rp.control_iterations);
    EXPECT_GT(ratio, 0.95);
    EXPECT_LT(ratio, 1.05);
}

TEST(StackSmash, PassiveBaselineIsBreached) {
    Scenario scenario(make_config(false));
    attack::StackSmashAttack attack;
    const ScenarioResult r = scenario.run(&attack, 30000);

    EXPECT_TRUE(r.attack_succeeded);
    EXPECT_GT(r.leaked_bytes, 0u);      // The secret left the device.
    EXPECT_GT(r.unsafe_commands, 0u);   // The plant was abused.
    EXPECT_FALSE(r.detected);
    EXPECT_EQ(r.operator_alerts, 0u);   // Nobody ever knows.
}

TEST(StackSmash, ResilientPlatformContainsAndRecovers) {
    Scenario scenario(make_config(true));
    attack::StackSmashAttack attack;
    const ScenarioResult r = scenario.run(&attack, 30000);

    EXPECT_TRUE(r.detected);
    EXPECT_TRUE(r.responded);
    EXPECT_EQ(r.leaked_bytes, 0u);  // Contained before the frame left.
    EXPECT_GT(r.operator_alerts, 0u);
    EXPECT_TRUE(r.evidence_chain_ok);
    EXPECT_GT(r.attack_window_records, 0u);
    // The critical service kept running (recovered via checkpoint).
    EXPECT_GT(r.control_iterations, 100u);
    ASSERT_TRUE(r.detection_latency.has_value());
    EXPECT_LT(*r.detection_latency, 10000u);
}

TEST(DmaExfil, PassiveLeaksResilientContains) {
    Scenario passive(make_config(false));
    attack::DmaExfilAttack attack_p;
    const auto rp = passive.run(&attack_p, 30000);
    EXPECT_TRUE(attack_p.succeeded());
    EXPECT_GT(rp.leaked_bytes, 0u);
    EXPECT_FALSE(rp.detected);

    Scenario resilient(make_config(true));
    attack::DmaExfilAttack attack_r;
    const auto rr = resilient.run(&attack_r, 30000);
    EXPECT_TRUE(rr.detected);
    EXPECT_LT(rr.leaked_bytes, rp.leaked_bytes);
}

TEST(BusTamper, PassiveLosesKeysResilientCatchesDrift) {
    Scenario passive(make_config(false));
    attack::BusTamperAttack attack_p;
    const auto rp = passive.run(&attack_p, 30000);
    EXPECT_TRUE(attack_p.succeeded());
    EXPECT_GT(attack_p.key_bytes_read(), 0u);
    EXPECT_GT(rp.leaked_bytes, 0u);

    Scenario resilient(make_config(true));
    attack::BusTamperAttack attack_r;
    const auto rr = resilient.run(&attack_r, 30000);
    EXPECT_TRUE(rr.detected);
    // Isolation cuts the read stream short and blocks the exfil frame.
    EXPECT_LT(attack_r.key_bytes_read(), 32u);
    EXPECT_EQ(rr.leaked_bytes, 0u);
    EXPECT_GT(rr.operator_alerts, 0u);
}

TEST(SensorSpoof, ResilientDegradesGracefully) {
    Scenario passive(make_config(false));
    attack::SensorSpoofAttack attack_p;
    const auto rp = passive.run(&attack_p, 30000);
    EXPECT_GT(rp.unsafe_commands, 0u);
    EXPECT_FALSE(rp.detected);

    Scenario resilient(make_config(true));
    attack::SensorSpoofAttack attack_r;
    const auto rr = resilient.run(&attack_r, 30000);
    EXPECT_TRUE(rr.detected);
    EXPECT_GT(rr.operator_alerts, 0u);
    // Active response (rate-limit / degradation) cuts plant abuse.
    EXPECT_LT(rr.unsafe_commands, rp.unsafe_commands);
    // Critical service continued.
    EXPECT_GT(rr.control_iterations, 100u);
}

TEST(TaskHang, PassiveRebootsResilientRestores) {
    Scenario passive(make_config(false));
    attack::TaskHangAttack attack_p;
    const auto rp = passive.run(&attack_p, 30000);
    EXPECT_GE(rp.reboots, 1u);  // Watchdog did its one trick.

    Scenario resilient(make_config(true));
    attack::TaskHangAttack attack_r;
    const auto rr = resilient.run(&attack_r, 30000);
    EXPECT_TRUE(rr.detected);
    // Checkpoint restore brings the task back without a full reboot
    // and with less downtime.
    EXPECT_GT(rr.control_iterations, rp.control_iterations);
    EXPECT_LE(rr.downtime_cycles, rp.downtime_cycles);
}

TEST(Replay, ChannelRejectsAndResilientRecords) {
    Scenario resilient(make_config(true));
    attack::ReplayAttack attack(resilient.link(), /*victim_is_a=*/true);
    const auto r = resilient.run(&attack, 30000);
    EXPECT_TRUE(attack.succeeded());  // The frame reached the victim...
    // ...but the channel rejected it and the monitor recorded it.
    EXPECT_GT(resilient.node().channel->rejected_replay(), 0u);
    EXPECT_GT(r.attack_window_records, 0u);
}

TEST(MitmTamper, StreakEscalatesOnResilient) {
    Scenario resilient(make_config(true));
    attack::MitmTamperAttack attack(resilient.link());
    const auto r = resilient.run(&attack, 30000);
    EXPECT_TRUE(attack.succeeded());
    EXPECT_GT(resilient.node().channel->rejected_tag(), 2u);
    EXPECT_TRUE(r.detected);
}

TEST(Glitch, EnvironmentExcursionDetectedOnlyByResilient) {
    Scenario passive(make_config(false));
    attack::GlitchAttack attack_p(1.0, 500);
    const auto rp = passive.run(&attack_p, 30000);
    EXPECT_FALSE(rp.detected);

    Scenario resilient(make_config(true));
    attack::GlitchAttack attack_r(1.0, 500);
    const auto rr = resilient.run(&attack_r, 30000);
    EXPECT_TRUE(rr.detected);
    EXPECT_GT(rr.operator_alerts, 0u);
}

TEST(BusProbe, ReconnaissanceFlagged) {
    Scenario resilient(make_config(true));
    attack::BusProbeAttack attack;
    const auto r = resilient.run(&attack, 30000);
    EXPECT_TRUE(r.detected);
}

TEST(SsmKill, IsolationDecidesSurvival) {
    // Physically isolated SSM (the paper's design): attack fails and
    // is itself evidenced.
    Scenario isolated(make_config(true));
    attack::SsmKillAttack attack_i;
    (void)isolated.run(&attack_i, 30000);
    EXPECT_FALSE(attack_i.succeeded());
    EXPECT_FALSE(isolated.node().ssm->disabled());
    EXPECT_TRUE(isolated.node().ssm->evidence().verify_chain());
    EXPECT_GT(isolated.node().ssm->evidence().size(), 0u);

    // Shared-resource SSM (TEE-style ablation): the security function
    // dies and takes its evidence with it.
    ScenarioConfig shared_cfg = make_config(true);
    shared_cfg.node.ssm_isolated = false;
    Scenario shared(shared_cfg);
    attack::SsmKillAttack attack_s;
    (void)shared.run(&attack_s, 30000);
    EXPECT_TRUE(attack_s.succeeded());
    EXPECT_TRUE(shared.node().ssm->disabled());
    EXPECT_EQ(shared.node().ssm->evidence().size(), 0u);
}

TEST(Evidence, SurvivesOnResilientDiesOnPassive) {
    // Passive: breach then watchdog-reboot wipes the volatile trace.
    Scenario passive(make_config(false));
    attack::TaskHangAttack hang;
    const auto rp = passive.run(&hang, 30000);
    EXPECT_GE(rp.reboots, 1u);
    // Records from before the reboot are gone.
    bool pre_attack_record = false;
    for (const auto& record : passive.node().trace.records()) {
        if (record.at < 30000) pre_attack_record = true;
    }
    EXPECT_FALSE(pre_attack_record);

    // Resilient: the full pre/post-attack evidence stream survives and
    // verifies.
    Scenario resilient(make_config(true));
    attack::StackSmashAttack smash;
    const auto rr = resilient.run(&smash, 30000);
    EXPECT_TRUE(rr.evidence_chain_ok);
    bool pre = false, post = false;
    for (const auto& record : resilient.node().ssm->evidence().records()) {
        if (record.at < 30000) pre = true;
        if (record.at >= 30000) post = true;
    }
    EXPECT_TRUE(pre);
    EXPECT_TRUE(post);
    const auto seal = resilient.node().ssm->evidence().seal();
    EXPECT_TRUE(core::EvidenceLog::verify_seal(
        resilient.node().ssm->evidence(), seal,
        crypto::hkdf(to_bytes(""), {}, "", 32)) == false);  // Wrong key.
}

TEST(FirmwareDowngrade, UpdateAgentBlocksRuntimeDowngrade) {
    Scenario scenario(make_config(true));
    auto& node = scenario.node();

    // Vendor ships and commits v5 first.
    crypto::Hash256 seed{};
    seed.fill(9);
    crypto::MerkleSigner vendor(seed, 4);
    // Re-provision the node against this vendor key for the test.
    node.update_agent = std::make_unique<boot::UpdateAgent>(
        vendor.public_key(), node.counters);

    auto make_image = [&vendor](std::uint32_t version) {
        boot::FirmwareImage image;
        image.name = "fw";
        image.security_version = version;
        image.load_addr = kCodeBase;
        image.entry_point = kCodeBase;
        image.payload = Bytes(64, static_cast<std::uint8_t>(version));
        boot::ImageSigner signer(vendor);
        signer.sign(image);
        return image.serialize();
    };
    ASSERT_EQ(node.update_agent->install(make_image(5)),
              boot::UpdateStatus::kOk);
    ASSERT_TRUE(node.update_agent->activate());
    node.update_agent->commit();

    attack::FirmwareDowngradeAttack attack(make_image(3));
    (void)scenario.run(&attack, 30000);
    EXPECT_FALSE(attack.succeeded());
    EXPECT_EQ(node.update_agent->active_image()->security_version, 5u);
}

}  // namespace
}  // namespace cres::platform
