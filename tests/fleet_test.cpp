// Fleet-management tests: enrolment, attestation sweeps, health
// collection and compromise localisation across a device population.
#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "platform/fleet.h"

namespace cres::platform {
namespace {

FleetConfig small_fleet(bool resilient) {
    FleetConfig config;
    config.device_count = 4;
    config.resilient = resilient;
    config.seed = 17;
    return config;
}

TEST(Fleet, EnrollsAndRunsDevices) {
    Fleet fleet(small_fleet(true));
    ASSERT_EQ(fleet.size(), 4u);
    fleet.run(20000);
    EXPECT_GT(fleet.fleet_iterations(), 4 * 10u);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        EXPECT_GT(fleet.device(i).stats().control_iterations, 10u);
    }
}

TEST(Fleet, CleanSweepAllTrusted) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);
    const SweepResult sweep = fleet.attestation_sweep();
    EXPECT_EQ(sweep.trusted, 4u);
    EXPECT_EQ(sweep.flagged, 0u);
    EXPECT_TRUE(sweep.flagged_devices().empty());
}

TEST(Fleet, SweepLocalisesImplantedDevices) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);

    // Devices 1 and 3 get firmware implants (measured on next boot).
    crypto::Hash256 implant;
    implant.fill(0x66);
    fleet.device(1).pcrs.extend(boot::PcrBank::kPcrFirmware, implant);
    fleet.device(3).pcrs.extend(boot::PcrBank::kPcrFirmware, implant);

    const SweepResult sweep = fleet.attestation_sweep();
    EXPECT_EQ(sweep.flagged, 2u);
    EXPECT_EQ(sweep.flagged_devices(), (std::vector<std::size_t>{1, 3}));
    EXPECT_EQ(sweep.verdicts[1], net::AttestResult::kWrongMeasurement);
}

TEST(Fleet, ZeroisedDeviceFailsAttestation) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);
    // Device 2's response manager zeroised its keys (post-incident);
    // model by wiping the TEE's secure memory region.
    fleet.device(2).tee_ram.fill(0);
    const SweepResult sweep = fleet.attestation_sweep();
    EXPECT_EQ(sweep.verdicts[2], net::AttestResult::kBadTag);
    EXPECT_EQ(sweep.flagged, 1u);
}

TEST(Fleet, HealthCollectionVerifies) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);
    const HealthSummary health = fleet.collect_health();
    ASSERT_EQ(health.states.size(), 4u);
    EXPECT_EQ(health.healthy, 4u);
    for (const bool valid : health.report_valid) EXPECT_TRUE(valid);
}

TEST(Fleet, CompromisedDeviceShowsInHealth) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);

    attack::StackSmashAttack attack;
    attack.launch(fleet.device(0), fleet.device(0).sim.now() + 1000);
    fleet.run(30000);

    const HealthSummary health = fleet.collect_health();
    // Device 0 went through an incident; its report is still signed and
    // verifiable whatever state it ended in.
    EXPECT_TRUE(health.report_valid[0]);
    // And its evidence log tells the story.
    EXPECT_GT(fleet.device(0).ssm->evidence().size(), 1u);
}

TEST(Fleet, PassiveFleetHasNothingTrustworthyToSay) {
    Fleet fleet(small_fleet(false));
    fleet.run(10000);
    const HealthSummary health = fleet.collect_health();
    for (const bool valid : health.report_valid) EXPECT_FALSE(valid);
    // Attestation still works (it needs only the TEE), so implants are
    // still caught at sweep time even on passive devices...
    const SweepResult sweep = fleet.attestation_sweep();
    EXPECT_EQ(sweep.trusted, 4u);
}

TEST(Fleet, WireAttestationSweepWorks) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);
    const SweepResult sweep = fleet.attestation_sweep_wire();
    EXPECT_EQ(sweep.trusted, 4u);
    EXPECT_EQ(sweep.flagged, 0u);
}

TEST(Fleet, WireSweepFlagsImplant) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);
    crypto::Hash256 implant;
    implant.fill(0x66);
    fleet.device(0).pcrs.extend(boot::PcrBank::kPcrFirmware, implant);
    const SweepResult sweep = fleet.attestation_sweep_wire();
    EXPECT_EQ(sweep.verdicts[0], net::AttestResult::kWrongMeasurement);
    EXPECT_EQ(sweep.flagged, 1u);
}

TEST(Fleet, DevicesAreIndependent) {
    Fleet fleet(small_fleet(true));
    attack::TaskHangAttack attack;
    attack.launch(fleet.device(0), 5000);
    fleet.run(30000);
    // Device 0 had an incident; the rest ran clean.
    for (std::size_t i = 1; i < fleet.size(); ++i) {
        EXPECT_EQ(fleet.device(i).ssm->dispatches().size(), 0u) << i;
    }
}

}  // namespace
}  // namespace cres::platform
