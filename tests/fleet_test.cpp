// Fleet-management tests: enrolment, attestation sweeps, health
// collection and compromise localisation across a device population.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "attack/attacks.h"
#include "attack/campaigns.h"
#include "obs/postmortem.h"
#include "platform/fleet.h"

namespace cres::platform {
namespace {

FleetConfig small_fleet(bool resilient) {
    FleetConfig config;
    config.device_count = 4;
    config.resilient = resilient;
    config.seed = 17;
    return config;
}

TEST(Fleet, EnrollsAndRunsDevices) {
    Fleet fleet(small_fleet(true));
    ASSERT_EQ(fleet.size(), 4u);
    fleet.run(20000);
    EXPECT_GT(fleet.fleet_iterations(), 4 * 10u);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        EXPECT_GT(fleet.device(i).stats().control_iterations, 10u);
    }
}

TEST(Fleet, CleanSweepAllTrusted) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);
    const SweepResult sweep = fleet.attestation_sweep();
    EXPECT_EQ(sweep.trusted, 4u);
    EXPECT_EQ(sweep.flagged, 0u);
    EXPECT_TRUE(sweep.flagged_devices().empty());
}

TEST(Fleet, SweepLocalisesImplantedDevices) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);

    // Devices 1 and 3 get firmware implants (measured on next boot).
    crypto::Hash256 implant;
    implant.fill(0x66);
    fleet.device(1).pcrs.extend(boot::PcrBank::kPcrFirmware, implant);
    fleet.device(3).pcrs.extend(boot::PcrBank::kPcrFirmware, implant);

    const SweepResult sweep = fleet.attestation_sweep();
    EXPECT_EQ(sweep.flagged, 2u);
    EXPECT_EQ(sweep.flagged_devices(), (std::vector<std::size_t>{1, 3}));
    EXPECT_EQ(sweep.verdicts[1], net::AttestResult::kWrongMeasurement);
}

TEST(Fleet, ZeroisedDeviceFailsAttestation) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);
    // Device 2's response manager zeroised its keys (post-incident);
    // model by wiping the TEE's secure memory region.
    fleet.device(2).tee_ram.fill(0);
    const SweepResult sweep = fleet.attestation_sweep();
    EXPECT_EQ(sweep.verdicts[2], net::AttestResult::kBadTag);
    EXPECT_EQ(sweep.flagged, 1u);
}

TEST(Fleet, HealthCollectionVerifies) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);
    const HealthSummary health = fleet.collect_health();
    ASSERT_EQ(health.states.size(), 4u);
    EXPECT_EQ(health.healthy, 4u);
    for (const bool valid : health.report_valid) EXPECT_TRUE(valid);
}

TEST(Fleet, CompromisedDeviceShowsInHealth) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);

    attack::StackSmashAttack attack;
    attack.launch(fleet.device(0), fleet.device(0).sim.now() + 1000);
    fleet.run(30000);

    const HealthSummary health = fleet.collect_health();
    // Device 0 went through an incident; its report is still signed and
    // verifiable whatever state it ended in.
    EXPECT_TRUE(health.report_valid[0]);
    // And its evidence log tells the story.
    EXPECT_GT(fleet.device(0).ssm->evidence().size(), 1u);
}

TEST(Fleet, PassiveFleetHasNothingTrustworthyToSay) {
    Fleet fleet(small_fleet(false));
    fleet.run(10000);
    const HealthSummary health = fleet.collect_health();
    for (const bool valid : health.report_valid) EXPECT_FALSE(valid);
    // Attestation still works (it needs only the TEE), so implants are
    // still caught at sweep time even on passive devices...
    const SweepResult sweep = fleet.attestation_sweep();
    EXPECT_EQ(sweep.trusted, 4u);
}

TEST(Fleet, WireAttestationSweepWorks) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);
    const SweepResult sweep = fleet.attestation_sweep_wire();
    EXPECT_EQ(sweep.trusted, 4u);
    EXPECT_EQ(sweep.flagged, 0u);
}

TEST(Fleet, WireSweepFlagsImplant) {
    Fleet fleet(small_fleet(true));
    fleet.run(10000);
    crypto::Hash256 implant;
    implant.fill(0x66);
    fleet.device(0).pcrs.extend(boot::PcrBank::kPcrFirmware, implant);
    const SweepResult sweep = fleet.attestation_sweep_wire();
    EXPECT_EQ(sweep.verdicts[0], net::AttestResult::kWrongMeasurement);
    EXPECT_EQ(sweep.flagged, 1u);
}

TEST(Fleet, DevicesAreIndependent) {
    Fleet fleet(small_fleet(true));
    attack::TaskHangAttack attack;
    attack.launch(fleet.device(0), 5000);
    fleet.run(30000);
    // Device 0 had an incident; the rest ran clean.
    for (std::size_t i = 1; i < fleet.size(); ++i) {
        EXPECT_EQ(fleet.device(i).ssm->dispatches().size(), 0u) << i;
    }
}

// --- Campaign correlation: fleet-level detection, device-level silence ------
// The acceptance bar for the correlation tier: each campaign class on
// a 64-device estate raises a fleet-level incident while NO single
// device's SSM opens one — the campaigns are paced to stay below every
// per-device threshold by construction.

FleetConfig estate(std::size_t devices, std::uint64_t seed) {
    FleetConfig config;
    config.device_count = devices;
    config.resilient = true;
    config.seed = seed;
    config.worker_threads = 0;  // Hardware concurrency; determinism has
                                // its own differential suite.
    return config;
}

std::size_t kind_count(const std::string& jsonl, const std::string& kind) {
    const std::string needle = "\"kind\":\"" + kind + "\"";
    std::size_t count = 0;
    for (std::size_t pos = jsonl.find(needle); pos != std::string::npos;
         pos = jsonl.find(needle, pos + needle.size())) {
        ++count;
    }
    return count;
}

/// No device-local incident anywhere: the stream carries no
/// incident-open records and every SSM still reports healthy.
void expect_no_device_incidents(Fleet& fleet) {
    EXPECT_EQ(kind_count(fleet.siem_stream().jsonl(), "incident-open"), 0u);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        ASSERT_NE(fleet.device(i).ssm, nullptr);
        EXPECT_EQ(fleet.device(i).ssm->health(), core::HealthState::kHealthy)
            << "device " << i;
    }
    const auto snapshot = fleet.collect_metrics();
    const auto* incidents =
        snapshot.find_counter("cres_csf_incidents_total");
    if (incidents != nullptr) {
        EXPECT_EQ(incidents->value(), 0u);
    }
}

TEST(FleetCampaign, WormPropagationDetectedWithoutDeviceIncidents) {
    Fleet fleet(estate(64, 23));
    attack::WormCampaign worm;
    worm.launch(fleet);
    EXPECT_EQ(worm.infections(), 64u);  // Fanout 2 reaches the estate.

    fleet.run(20000);
    fleet.drain_siem();

    const auto& campaigns = fleet.campaign_monitor().campaigns();
    ASSERT_FALSE(campaigns.empty());
    const CampaignIncident& incident = campaigns.front();
    EXPECT_EQ(incident.kind, CampaignKind::kWorm);
    EXPECT_GE(incident.device_total, 8u);  // worm_min_devices.
    EXPECT_GE(incident.detected_at, incident.first_at);
    EXPECT_FALSE(incident.devices.empty());
    EXPECT_TRUE(std::is_sorted(incident.devices.begin(),
                               incident.devices.end()));

    EXPECT_EQ(kind_count(fleet.siem_stream().jsonl(), "campaign"), 1u);
    expect_no_device_incidents(fleet);
}

TEST(FleetCampaign, TracedWormReconstructsExactInfectionDag) {
    // The provenance acceptance bar: on a traced 64-device estate the
    // reconstructed DAG names the true patient zero and the exact
    // infection edges — ground truth comes from the attack driver.
    Fleet fleet(estate(64, 23));
    attack::WormCampaign worm;
    worm.launch(fleet);
    EXPECT_EQ(worm.infections(), 64u);

    fleet.run(20000);
    fleet.drain_siem();

    const ProvenanceReport& report = fleet.campaign_monitor().provenance();
    EXPECT_TRUE(report.traced);
    EXPECT_TRUE(report.exact);  // Every worm edge carried a context.
    EXPECT_EQ(report.patient_zero,
              static_cast<std::uint32_t>(worm.patient_zero()));
    EXPECT_EQ(report.max_hop, worm.max_depth());

    // Edge-exact: one reconstructed edge per victim, matching the
    // driver's schedule (compare sorted by child — each victim is
    // infected exactly once in both views).
    ASSERT_EQ(report.edges.size(), worm.edges().size());
    auto got = report.edges;
    auto want = worm.edges();
    const auto by_child = [](const auto& x, const auto& y) {
        return x.child < y.child;
    };
    std::sort(got.begin(), got.end(), by_child);
    std::sort(want.begin(), want.end(), by_child);
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].parent, want[i].parent) << "edge " << i;
        EXPECT_EQ(got[i].child, want[i].child) << "edge " << i;
        EXPECT_EQ(got[i].hop, want[i].hop) << "edge " << i;
    }

    // The campaign SIEM record names patient zero and renders the
    // propagation tree...
    const std::string& jsonl = fleet.siem_stream().jsonl();
    EXPECT_NE(jsonl.find("patient zero device 0 (depth 6, exact)"),
              std::string::npos);
    EXPECT_NE(jsonl.find("; tree 0->1,0->2,1->3"), std::string::npos);
    // ...worm advisories carry the propagated trace objects...
    EXPECT_NE(jsonl.find("\"trace\":{\"origin\":0,\"hop\":1"),
              std::string::npos);
    // ...and the sealed campaign postmortem embeds the DAG.
    const auto sealed = fleet.sealed_campaign_postmortems();
    ASSERT_FALSE(sealed.empty());
    EXPECT_NE(sealed[0].find("\"provenance\": {\"traced\": true, "
                             "\"exact\": true, \"patient_zero\": 0"),
              std::string::npos);
    EXPECT_TRUE(obs::verify_postmortem(sealed[0], fleet.siem_key()));

    // The hop-depth histogram counts one sample per reconstructed edge.
    const auto snapshot = fleet.collect_metrics();
    const auto* depth =
        snapshot.find_histogram("cres_fleet_infection_depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->count(), report.edges.size());
    EXPECT_EQ(depth->max(), worm.max_depth());
}

TEST(FleetCampaign, UntracedEstateFallsBackToUnionFind) {
    // causal_tracing off: v1 frames on the wire, no trace bytes in the
    // export, no DAG — but the union-find correlation still detects
    // the campaign.
    FleetConfig config = estate(64, 23);
    config.causal_tracing = false;
    Fleet fleet(config);
    attack::WormCampaign worm;
    worm.launch(fleet);

    fleet.run(20000);
    fleet.drain_siem();

    const ProvenanceReport& report = fleet.campaign_monitor().provenance();
    EXPECT_FALSE(report.traced);
    EXPECT_FALSE(report.exact);
    EXPECT_TRUE(report.edges.empty());
    EXPECT_TRUE(fleet.campaign_monitor().propagation_tree().empty());

    ASSERT_FALSE(fleet.campaign_monitor().campaigns().empty());
    EXPECT_EQ(fleet.campaign_monitor().campaigns().front().kind,
              CampaignKind::kWorm);
    const std::string& jsonl = fleet.siem_stream().jsonl();
    EXPECT_EQ(jsonl.find("\"trace\""), std::string::npos);
    EXPECT_EQ(jsonl.find("patient zero"), std::string::npos);
    // The sealed campaign bundle has no provenance section either.
    const auto sealed = fleet.sealed_campaign_postmortems();
    ASSERT_FALSE(sealed.empty());
    EXPECT_EQ(sealed[0].find("\"provenance\""), std::string::npos);
    EXPECT_TRUE(obs::verify_postmortem(sealed[0], fleet.siem_key()));
}

TEST(FleetSiem, ZeroCapacityBuffersPublishNothingAndCountNothing) {
    // siem_buffer_capacity 0 disables the export layer per node: a
    // campaign runs, nothing stages, the drain appends nothing — and
    // the header-only stream still verifies offline.
    FleetConfig config = estate(8, 43);
    config.siem_buffer_capacity = 0;
    Fleet fleet(config);
    attack::WormCampaign worm;
    worm.launch(fleet);
    fleet.run(20000);

    EXPECT_EQ(fleet.drain_siem(), 0u);
    const std::string& jsonl = fleet.siem_stream().jsonl();
    const obs::SiemVerifyResult verdict =
        obs::SiemStream::verify(jsonl, fleet.siem_key());
    EXPECT_TRUE(verdict.ok) << verdict.reason;
    EXPECT_EQ(verdict.records, 0u);
    // Disabled buffers surface no drop-accounting records (there is no
    // staging layer to account for) and feed no correlation.
    EXPECT_EQ(kind_count(jsonl, "state"), 0u);
    EXPECT_TRUE(fleet.campaign_monitor().campaigns().empty());
}

TEST(FleetSiem, EmptyFleetDrainYieldsVerifiableHeaderOnlyStream) {
    Fleet fleet(estate(0, 47));
    EXPECT_EQ(fleet.size(), 0u);
    EXPECT_EQ(fleet.drain_siem(), 0u);
    const std::string& jsonl = fleet.siem_stream().jsonl();
    EXPECT_EQ(jsonl, std::string(obs::SiemStream::header()) + "\n");
    const obs::SiemVerifyResult verdict =
        obs::SiemStream::verify(jsonl, fleet.siem_key());
    EXPECT_TRUE(verdict.ok) << verdict.reason;
    EXPECT_EQ(verdict.records, 0u);
}

TEST(FleetSiem, OverflowBetweenDrainsSurfacesDropAccounting) {
    // A 1-slot staging buffer under campaign load must drop — and the
    // drain surfaces the loss as an explicit record instead of a
    // silent gap.
    FleetConfig config = estate(64, 23);
    config.siem_buffer_capacity = 1;
    Fleet fleet(config);
    attack::WormCampaign worm;
    attack::CoordinatedReplayCampaign replay;
    worm.launch(fleet);
    replay.launch(fleet);  // Second record per device overflows the slot.
    fleet.run(60000);
    fleet.drain_siem();

    const std::string& jsonl = fleet.siem_stream().jsonl();
    EXPECT_NE(jsonl.find("\"source\":\"siem-buffer\""), std::string::npos);
    EXPECT_NE(jsonl.find("dropped records since last drain"),
              std::string::npos);
    EXPECT_TRUE(obs::SiemStream::verify(jsonl, fleet.siem_key()).ok);
    // A second drain with no new overflow adds no new drop records.
    const std::size_t drop_records = kind_count(jsonl, "state");
    fleet.drain_siem();
    EXPECT_EQ(kind_count(fleet.siem_stream().jsonl(), "state"),
              drop_records);
}

TEST(FleetCampaign, CoordinatedReplayDetectedWithoutDeviceIncidents) {
    Fleet fleet(estate(64, 29));
    attack::CoordinatedReplayCampaign replay;
    replay.launch(fleet);

    fleet.run(50000);
    fleet.drain_siem();
    EXPECT_GE(replay.replayed_devices(), 8u);

    const auto& campaigns = fleet.campaign_monitor().campaigns();
    ASSERT_FALSE(campaigns.empty());
    const CampaignIncident& incident = campaigns.front();
    EXPECT_EQ(incident.kind, CampaignKind::kCoordinatedReplay);
    EXPECT_EQ(incident.fingerprint, 2u);  // The replayed sequence number.
    EXPECT_GE(incident.device_total, 8u);
    expect_no_device_incidents(fleet);
}

TEST(FleetCampaign, StaggeredDowngradeDetectedWithoutDeviceIncidents) {
    Fleet fleet(estate(64, 31));
    attack::StaggeredDowngradeCampaign downgrade;
    downgrade.launch(fleet);
    EXPECT_EQ(downgrade.installs_scheduled(), 64u);

    // Eight waves at 900-cycle stagger cross the bar around cycle 8300;
    // later installs stay scheduled but are irrelevant to detection.
    fleet.run(12000);
    fleet.drain_siem();

    const auto& campaigns = fleet.campaign_monitor().campaigns();
    ASSERT_FALSE(campaigns.empty());
    const CampaignIncident& incident = campaigns.front();
    EXPECT_EQ(incident.kind, CampaignKind::kStaggeredDowngrade);
    EXPECT_EQ(incident.fingerprint, 1u);  // The offered (stale) version.
    EXPECT_GE(incident.device_total, 8u);
    expect_no_device_incidents(fleet);
}

TEST(FleetCampaign, CombinedEstateExportsVerifiableEvidence) {
    Fleet fleet(estate(64, 37));
    attack::WormCampaign worm;
    attack::CoordinatedReplayCampaign replay;
    attack::StaggeredDowngradeCampaign downgrade;
    worm.launch(fleet);
    replay.launch(fleet);
    downgrade.launch(fleet);

    fleet.run(60000);
    fleet.drain_siem();

    // All three campaign classes present.
    bool seen[kCampaignKindCount] = {};
    for (const auto& c : fleet.campaign_monitor().campaigns()) {
        seen[static_cast<std::size_t>(c.kind)] = true;
    }
    EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
    expect_no_device_incidents(fleet);

    // The export chain verifies offline with only the key + JSONL...
    const std::string& jsonl = fleet.siem_stream().jsonl();
    const obs::SiemVerifyResult verdict =
        obs::SiemStream::verify(jsonl, fleet.siem_key());
    EXPECT_TRUE(verdict.ok) << verdict.reason;
    EXPECT_EQ(verdict.records, fleet.siem_stream().records());
    // ...every device anchored its evidence head in the drain...
    EXPECT_EQ(kind_count(jsonl, "evidence-head"), 64u);
    // ...and a 1-byte flip anywhere breaks it.
    std::string tampered = jsonl;
    tampered[tampered.size() / 3] ^= 0x01;
    EXPECT_FALSE(obs::SiemStream::verify(tampered, fleet.siem_key()).ok);

    // Campaign postmortems are sealed under the export key.
    const auto sealed = fleet.sealed_campaign_postmortems();
    ASSERT_EQ(sealed.size(), fleet.campaign_monitor().campaigns().size());
    for (const std::string& bundle : sealed) {
        EXPECT_TRUE(obs::verify_postmortem(bundle, fleet.siem_key()));
        std::string flipped = bundle;
        flipped[flipped.size() / 2] ^= 0x01;
        EXPECT_FALSE(obs::verify_postmortem(flipped, fleet.siem_key()));
    }

    // Fleet-tier series land in the merged snapshot and the trace.
    const auto snapshot = fleet.collect_metrics();
    const std::string prometheus = snapshot.prometheus();
    EXPECT_NE(prometheus.find("cres_fleet_campaigns_total"),
              std::string::npos);
    EXPECT_NE(prometheus.find("cres_fleet_campaign_detection_latency"),
              std::string::npos);
    EXPECT_NE(fleet.chrome_trace().find("campaign"), std::string::npos);
}

TEST(FleetCampaign, MergeSkippedCounterTracksUnboundRegistries) {
    // Metrics off: every per-device registry is empty, and the merge
    // says so instead of silently producing a hollow snapshot.
    FleetConfig dark = estate(4, 41);
    dark.metrics = false;
    Fleet dark_fleet(dark);
    dark_fleet.run(5000);
    const auto dark_snapshot = dark_fleet.collect_metrics();
    const auto* skipped =
        dark_snapshot.find_counter("cres_fleet_merge_skipped_total");
    ASSERT_NE(skipped, nullptr);
    EXPECT_EQ(skipped->value(), 4u);

    Fleet lit_fleet(estate(4, 41));
    lit_fleet.run(5000);
    const auto lit_snapshot = lit_fleet.collect_metrics();
    const auto* none =
        lit_snapshot.find_counter("cres_fleet_merge_skipped_total");
    ASSERT_NE(none, nullptr);
    EXPECT_EQ(none->value(), 0u);
}

}  // namespace
}  // namespace cres::platform
