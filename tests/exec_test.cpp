// Differential tests for the two-tier guest-execution engine
// (docs/EXECUTION.md): the translated fast paths must be
// architecturally indistinguishable from the plain interpreter —
// identical registers, CSRs, pc, privilege/world state, cycle and
// instret counters and trap history — on every opcode, across traps,
// interrupts delivered mid-superblock, WFI, world switches, and the
// translation lifecycle (invalidation, firmware rewrite, env changes).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/translate.h"
#include "isa/assembler.h"
#include "isa/cpu.h"
#include "isa/encoding.h"
#include "mem/bus.h"
#include "mem/ram.h"
#include "platform/fleet.h"
#include "platform/memmap.h"
#include "platform/node.h"
#include "platform/translation_cache.h"
#include "platform/workload.h"

namespace cres {
namespace {

using isa::Cpu;
using isa::Instruction;
using isa::Opcode;
using platform::kAppRamBase;
using platform::kAppRamSize;
using platform::kCodeBase;

// A bare machine: CPU + bus + RAM, no peripherals, no OS services.
struct Machine {
    mem::Bus bus;
    mem::Ram ram{"app_ram", kAppRamSize};
    Cpu cpu{"cpu", bus};

    Machine() {
        bus.map(mem::RegionConfig{"app_ram", kAppRamBase, kAppRamSize,
                                  false, false},
                ram);
    }

    void load(const isa::Program& program, bool translate) {
        ram.load(program.origin - kAppRamBase, program.code);
        cpu.reset(program.origin);
        if (translate) {
            cpu.install_translation(analysis::translate_image_shared(
                program.code, program.origin, program.origin));
        }
    }

    void load_words(const std::vector<std::uint32_t>& words, bool translate) {
        Bytes code;
        for (const std::uint32_t w : words) {
            for (int i = 0; i < 4; ++i) {
                code.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
            }
        }
        ram.load(kCodeBase - kAppRamBase, code);
        cpu.reset(kCodeBase);
        if (translate) {
            cpu.install_translation(
                analysis::translate_image_shared(code, kCodeBase, kCodeBase));
        }
    }
};

// Every piece of architectural state the lockstep contract covers.
void expect_same_state(const Cpu& a, const Cpu& b, const std::string& at) {
    EXPECT_EQ(a.pc(), b.pc()) << at;
    for (unsigned r = 0; r < 16; ++r) {
        EXPECT_EQ(a.reg(r), b.reg(r)) << at << " r" << r;
    }
    for (std::uint16_t c = 0; c < isa::kCsrCount; ++c) {
        EXPECT_EQ(a.csr(c), b.csr(c)) << at << " csr" << c;
    }
    EXPECT_EQ(a.instret(), b.instret()) << at;
    EXPECT_EQ(a.cycles(), b.cycles()) << at;
    EXPECT_EQ(a.trap_count(), b.trap_count()) << at;
    EXPECT_EQ(a.privileged(), b.privileged()) << at;
    EXPECT_EQ(a.secure(), b.secure()) << at;
    EXPECT_EQ(a.halted(), b.halted()) << at;
    EXPECT_EQ(a.waiting(), b.waiting()) << at;
}

std::uint32_t op(Opcode opcode, unsigned rd, unsigned rs1, unsigned rs2,
                 std::uint16_t imm) {
    Instruction insn;
    insn.opcode = opcode;
    insn.rd = static_cast<std::uint8_t>(rd);
    insn.rs1 = static_cast<std::uint8_t>(rs1);
    insn.rs2 = static_cast<std::uint8_t>(rs2);
    insn.imm = imm;
    return isa::encode(insn);
}

// Runs `words` on an interpreter machine, translated tick-driven
// machines with check elision on and off, and translated run_steps
// machines with elision on and off, asserting lockstep. Elision in
// both states is part of the per-opcode matrix: a proof bit may only
// ever remove redundant checks, never change an outcome.
void lockstep_words(const std::vector<std::uint32_t>& words,
                    std::uint64_t max_cycles = 4096) {
    Machine interp;
    Machine ticked;
    Machine ticked_checked;
    Machine threaded;
    Machine threaded_checked;
    interp.load_words(words, /*translate=*/false);
    ticked.load_words(words, /*translate=*/true);
    ticked_checked.load_words(words, /*translate=*/true);
    ticked_checked.cpu.set_check_elision(false);
    threaded.load_words(words, /*translate=*/true);
    threaded_checked.load_words(words, /*translate=*/true);
    threaded_checked.cpu.set_check_elision(false);

    for (std::uint64_t c = 0; c < max_cycles; ++c) {
        interp.cpu.tick(static_cast<sim::Cycle>(c));
        ticked.cpu.tick(static_cast<sim::Cycle>(c));
        ticked_checked.cpu.tick(static_cast<sim::Cycle>(c));
        expect_same_state(interp.cpu, ticked.cpu,
                          "cycle " + std::to_string(c));
        expect_same_state(interp.cpu, ticked_checked.cpu,
                          "no-elide cycle " + std::to_string(c));
        if (interp.cpu.halted() || interp.cpu.waiting()) break;
    }
    EXPECT_TRUE(interp.cpu.halted() || interp.cpu.waiting())
        << "program did not halt or park";
    EXPECT_GT(ticked.cpu.translated_instret(), 0u);
    EXPECT_EQ(ticked_checked.cpu.elided_ops(), 0u);

    // run_steps is contractually equivalent to a step() loop (neither
    // advances the cycle counter — programs that read mcycle see the
    // same value on both), so compare it against a step()-driven
    // interpreter rather than the tick-driven one.
    Machine stepped;
    stepped.load_words(words, /*translate=*/false);
    for (std::uint64_t s = 0; s < max_cycles; ++s) {
        if (stepped.cpu.halted() || stepped.cpu.waiting()) break;
        (void)stepped.cpu.step();
    }
    (void)threaded.cpu.run_steps(max_cycles);
    (void)threaded_checked.cpu.run_steps(max_cycles);
    expect_same_state(stepped.cpu, threaded.cpu, "run_steps final state");
    expect_same_state(stepped.cpu, threaded_checked.cpu,
                      "no-elide run_steps final state");
}

TEST(ExecLockstep, EveryOpcodeMatchesInterpreter) {
    const mem::Addr data = platform::kDataBase;
    const std::uint32_t hi = static_cast<std::uint16_t>(data >> 16);
    const std::uint32_t lo = static_cast<std::uint16_t>(data & 0xffff);

    // One program per opcode: a register-seeding prologue, the opcode
    // under test (several operand shapes), then halt. Invalid words and
    // traps are part of the matrix: both engines must agree on those
    // too (mtvec is left at 0, so an unhandled trap halts the core and
    // the final trap CSRs are compared).
    const std::vector<std::vector<std::uint32_t>> programs = {
        {op(Opcode::kNop, 0, 0, 0, 0)},
        {op(Opcode::kAdd, 1, 2, 3, 0)},
        {op(Opcode::kSub, 1, 3, 2, 0)},
        {op(Opcode::kAnd, 4, 2, 3, 0)},
        {op(Opcode::kOr, 4, 2, 3, 0)},
        {op(Opcode::kXor, 4, 2, 3, 0)},
        {op(Opcode::kShl, 4, 2, 5, 0)},
        {op(Opcode::kShr, 4, 6, 5, 0)},
        {op(Opcode::kSra, 4, 6, 5, 0)},
        {op(Opcode::kMul, 4, 2, 3, 0)},
        {op(Opcode::kSlt, 4, 6, 2, 0)},
        {op(Opcode::kSltu, 4, 6, 2, 0)},
        {op(Opcode::kAddi, 1, 2, 0, 0xfffe)},  // Negative immediate.
        {op(Opcode::kAndi, 1, 6, 0, 0x0ff0)},
        {op(Opcode::kOri, 1, 2, 0, 0xf00f)},
        {op(Opcode::kXori, 1, 2, 0, 0xffff)},
        {op(Opcode::kShli, 1, 2, 0, 7)},
        {op(Opcode::kShri, 1, 6, 0, 3)},
        {op(Opcode::kLui, 1, 0, 0, 0xbeef)},
        // Loads/stores: r7 = data base; store then load all widths.
        {op(Opcode::kLui, 7, 0, 0, static_cast<std::uint16_t>(hi)),
         op(Opcode::kOri, 7, 7, 0, static_cast<std::uint16_t>(lo)),
         op(Opcode::kSw, 2, 7, 0, 0), op(Opcode::kLw, 8, 7, 0, 0),
         op(Opcode::kSh, 3, 7, 0, 8), op(Opcode::kLh, 9, 7, 0, 8),
         op(Opcode::kSb, 6, 7, 0, 12), op(Opcode::kLb, 10, 7, 0, 12),
         // Misaligned load: trap with mtvec=0 halts; CSRs compared.
         op(Opcode::kLw, 11, 7, 0, 2)},
        // Branches, both taken and not taken.
        {op(Opcode::kBeq, 2, 2, 0, 8), op(Opcode::kHalt, 0, 0, 0, 0),
         op(Opcode::kBeq, 2, 3, 0, 0xfffc)},
        {op(Opcode::kBne, 2, 3, 0, 8), op(Opcode::kHalt, 0, 0, 0, 0),
         op(Opcode::kBne, 2, 2, 0, 0xfffc)},
        {op(Opcode::kBlt, 2, 6, 0, 8), op(Opcode::kHalt, 0, 0, 0, 0),
         op(Opcode::kBlt, 6, 2, 0, 0xfffc)},
        {op(Opcode::kBge, 6, 2, 0, 8), op(Opcode::kHalt, 0, 0, 0, 0),
         op(Opcode::kBge, 2, 6, 0, 0xfffc)},
        {op(Opcode::kBltu, 6, 2, 0, 8), op(Opcode::kHalt, 0, 0, 0, 0),
         op(Opcode::kBltu, 2, 6, 0, 0xfffc)},
        {op(Opcode::kBgeu, 2, 6, 0, 8), op(Opcode::kHalt, 0, 0, 0, 0),
         op(Opcode::kBgeu, 6, 2, 0, 0xfffc)},
        // jal forward over a halt; jalr return through lr.
        {op(Opcode::kJal, 14, 0, 0, 12), op(Opcode::kHalt, 0, 0, 0, 0),
         op(Opcode::kNop, 0, 0, 0, 0), op(Opcode::kJalr, 0, 14, 0, 0)},
        // csrw/csrr round trip through mscratch.
        {op(Opcode::kCsrw, 0, 2, 0, isa::kCsrMscratch),
         op(Opcode::kCsrr, 1, 0, 0, isa::kCsrMscratch)},
        // csrr of the read-only counters.
        {op(Opcode::kCsrr, 1, 0, 0, isa::kCsrMinstret),
         op(Opcode::kCsrr, 2, 0, 0, isa::kCsrMcycle)},
        // ecall with no handler: architectural trap (mtvec=0 -> halt).
        {op(Opcode::kEcall, 0, 0, 0, 7)},
        // mret round trip: mepc set via csrw, then return through it.
        // Body starts at +0x10 (after the 4-word prologue); the halt
        // mret lands on is at +0x20.
        {op(Opcode::kLui, 1, 0, 0, 1),  // r1 = 0x10000 = kCodeBase.
         op(Opcode::kOri, 1, 1, 0, 0x20),
         op(Opcode::kCsrw, 0, 1, 0, isa::kCsrMepc),
         op(Opcode::kMret, 0, 0, 0, 0), op(Opcode::kHalt, 0, 0, 0, 0)},
        // smc with no secure world installed: security-fault trap.
        {op(Opcode::kSmc, 0, 0, 0, 0)},
        // sret outside the secure world: security-fault trap.
        {op(Opcode::kSret, 0, 0, 0, 0)},
        // smc/sret round trip: stvec -> secure world -> back. The sret
        // sits at +0x28 (body word 6 after the 4-word prologue).
        {op(Opcode::kLui, 1, 0, 0, 1), op(Opcode::kOri, 1, 1, 0, 0x28),
         op(Opcode::kCsrw, 0, 1, 0, isa::kCsrStvec),
         op(Opcode::kSmc, 0, 0, 0, 0), op(Opcode::kHalt, 0, 0, 0, 0),
         op(Opcode::kNop, 0, 0, 0, 0),
         op(Opcode::kSret, 0, 0, 0, 0)},  // Secure-world entry point.
        // wfi with a pending-but-masked interrupt path is covered by
        // the IRQ tests; bare wfi parks the core (compared mid-wait).
        {op(Opcode::kWfi, 0, 0, 0, 0)},
        // Undefined opcode: illegal-instruction trap from the word.
        {0xff000000u},
        // Writes to r0 are discarded on every path.
        {op(Opcode::kAddi, 0, 2, 0, 123), op(Opcode::kAdd, 0, 2, 3, 0)},
    };

    std::size_t index = 0;
    for (const auto& body : programs) {
        SCOPED_TRACE("program " + std::to_string(index++));
        std::vector<std::uint32_t> words = {
            // Prologue: distinctive register values.
            op(Opcode::kAddi, 2, 0, 0, 5),
            op(Opcode::kAddi, 3, 0, 0, 9),
            op(Opcode::kAddi, 5, 0, 0, 3),
            op(Opcode::kLui, 6, 0, 0, 0x8000),  // Negative value.
        };
        words.insert(words.end(), body.begin(), body.end());
        words.push_back(op(Opcode::kHalt, 0, 0, 0, 0));
        lockstep_words(words, 512);
    }
}

TEST(ExecLockstep, InterruptDeliveredMidSuperblock) {
    // A tight translated loop with interrupts enabled; the IRQ arrives
    // while the threaded dispatcher is deep inside the superblock, and
    // must be delivered at exactly the same instruction boundary.
    const isa::Program program = isa::assemble(R"(
        start:
            la   r1, isr
            csrw mtvec, r1
            addi r1, r0, 1          ; enable irq line 0
            csrw mie, r1
            addi r1, r0, 2          ; mstatus.MIE
            csrw mstatus, r1
            addi r2, r0, 0
        loop:
            addi r2, r2, 1
            addi r3, r2, 7
            xor  r4, r3, r2
            j    loop
        isr:
            addi r5, r5, 1
            beq  r5, r6, stop       ; r6 never matches: fall through
            mret
        stop:
            halt
    )",
                                               kCodeBase);

    Machine interp;
    Machine translated;
    interp.load(program, false);
    translated.load(program, true);

    // Drive both with step(); inject the IRQ after unaligned strides so
    // delivery lands mid-superblock at varying loop offsets.
    std::uint64_t stride = 37;
    for (int round = 0; round < 50; ++round) {
        for (std::uint64_t i = 0; i < stride; ++i) {
            (void)interp.cpu.step();
            (void)translated.cpu.step();
        }
        interp.cpu.raise_irq(0);
        translated.cpu.raise_irq(0);
        expect_same_state(interp.cpu, translated.cpu,
                          "round " + std::to_string(round));
        stride = (stride * 3 + 1) % 97 + 13;  // Varied, bounded.
    }
    EXPECT_GT(interp.cpu.trap_count(), 0u);
    EXPECT_GT(translated.cpu.translated_instret(), 0u);

    // Same again with run_steps driving the translated core.
    Machine threaded;
    threaded.load(program, true);
    Machine reference;
    reference.load(program, false);
    std::uint64_t budget = 41;
    for (int round = 0; round < 50; ++round) {
        const std::uint64_t a = threaded.cpu.run_steps(budget);
        const std::uint64_t b = reference.cpu.run_steps(budget);
        EXPECT_EQ(a, b) << "round " << round;
        threaded.cpu.raise_irq(0);
        reference.cpu.raise_irq(0);
        expect_same_state(threaded.cpu, reference.cpu,
                          "threaded round " + std::to_string(round));
        budget = (budget * 5 + 3) % 131 + 11;  // Varied, bounded.
    }
}

TEST(ExecLockstep, WfiAndTimerWakeupMatch) {
    platform::NodeConfig a_cfg;
    a_cfg.name = "interp";
    a_cfg.translate = false;
    platform::NodeConfig b_cfg;
    b_cfg.name = "translated";
    b_cfg.translate = true;

    platform::Node a(a_cfg);
    platform::Node b(b_cfg);
    const isa::Program program = platform::interrupt_control_loop_program();
    a.load_and_start(program);
    b.load_and_start(program);
    EXPECT_FALSE(a.cpu.translation_active());
    EXPECT_TRUE(b.cpu.translation_active());

    for (int slice = 0; slice < 40; ++slice) {
        a.run(500);
        b.run(500);
        expect_same_state(a.cpu, b.cpu, "slice " + std::to_string(slice));
    }
    EXPECT_GT(b.cpu.trap_count(), 0u);  // Timer IRQs delivered.
    EXPECT_GT(b.cpu.translated_instret(), 0u);
    EXPECT_GT(a.stats().control_iterations, 0u);
    EXPECT_EQ(a.stats().control_iterations, b.stats().control_iterations);
}

TEST(ExecLockstep, ControlLoopNodesStayIdentical) {
    platform::NodeConfig a_cfg;
    a_cfg.name = "interp";
    a_cfg.resilient = true;
    a_cfg.translate = false;
    platform::NodeConfig b_cfg = a_cfg;
    b_cfg.name = "translated";
    b_cfg.translate = true;

    platform::Node a(a_cfg);
    platform::Node b(b_cfg);
    const isa::Program program = platform::control_loop_program();
    a.load_and_start(program);
    b.load_and_start(program);
    a.arm_resilience(program);
    b.arm_resilience(program);

    for (int slice = 0; slice < 20; ++slice) {
        a.run(2000);
        b.run(2000);
        expect_same_state(a.cpu, b.cpu, "slice " + std::to_string(slice));
    }
    EXPECT_GT(a.stats().control_iterations, 0u);
    EXPECT_EQ(a.stats().control_iterations, b.stats().control_iterations);
    EXPECT_EQ(a.stats().telemetry_frames, b.stats().telemetry_frames);
    EXPECT_GT(b.cpu.translated_instret(), 0u);
}

TEST(ExecTranslation, SelfModifyingCodeFallsBackToInterpreter) {
    // The program overwrites its own `addi r1, r0, 1` with
    // `addi r1, r0, 42`, then loops back over it. Both engines must
    // execute the *new* instruction; the translated core must have
    // dropped its translation at the store.
    const std::uint32_t patched = op(Opcode::kAddi, 1, 0, 0, 42);
    const isa::Program program = isa::assemble(
        R"(
        start:
            la   r7, target
            li   r8, )" +
            std::to_string(patched) + R"(
        target:
            addi r1, r0, 1
            beq  r1, r9, done       ; r9 = 42 once patched
            sw   r8, r7, 0          ; overwrite `target` word
            addi r9, r0, 42
            j    target
        done:
            halt
    )",
        kCodeBase);

    Machine interp;
    Machine translated;
    interp.load(program, false);
    translated.load(program, true);
    EXPECT_TRUE(translated.cpu.translation_active());

    for (std::uint64_t c = 0; c < 256 && !interp.cpu.halted(); ++c) {
        interp.cpu.tick(static_cast<sim::Cycle>(c));
        translated.cpu.tick(static_cast<sim::Cycle>(c));
        expect_same_state(interp.cpu, translated.cpu,
                          "cycle " + std::to_string(c));
    }
    EXPECT_TRUE(interp.cpu.halted());
    EXPECT_EQ(interp.cpu.reg(1), 42u);
    EXPECT_FALSE(translated.cpu.translation_active())
        << "self-modification must invalidate the translation";

    // run_steps variant: the burst itself contains the store.
    Machine threaded;
    threaded.load(program, true);
    (void)threaded.cpu.run_steps(256);
    EXPECT_TRUE(threaded.cpu.halted());
    EXPECT_EQ(threaded.cpu.reg(1), 42u);
    EXPECT_FALSE(threaded.cpu.translation_active());
}

TEST(ExecTranslation, MpuReconfigurationRevalidates) {
    const isa::Program program = isa::assemble(R"(
        loop:
            addi r1, r1, 1
            j    loop
    )",
                                               kCodeBase);
    Machine interp;
    Machine translated;
    interp.load(program, false);
    translated.load(program, true);

    for (int i = 0; i < 10; ++i) {
        (void)interp.cpu.step();
        (void)translated.cpu.step();
    }
    expect_same_state(interp.cpu, translated.cpu, "before MPU");

    // Enable an MPU with *no* executable region: the next fetch must
    // MPU-fault on both engines — the translated core may not keep
    // running from its (now unfetchable) window.
    for (Machine* m : {&interp, &translated}) {
        m->cpu.mpu().add_region(mem::MpuRegion{
            "data-only", kAppRamBase, kAppRamSize, true, true, false, true});
        m->cpu.mpu().set_enabled(true);
    }
    (void)interp.cpu.step();
    (void)translated.cpu.step();
    expect_same_state(interp.cpu, translated.cpu, "after MPU enable");
    EXPECT_GT(interp.cpu.trap_count(), 0u);

    // Restore execute permission: translation becomes usable again.
    for (Machine* m : {&interp, &translated}) {
        m->cpu.mpu().set_enabled(false);
        m->cpu.reset(kCodeBase);
    }
    const std::uint64_t before = translated.cpu.translated_instret();
    for (int i = 0; i < 10; ++i) {
        (void)interp.cpu.step();
        (void)translated.cpu.step();
    }
    expect_same_state(interp.cpu, translated.cpu, "after MPU disable");
    EXPECT_GT(translated.cpu.translated_instret(), before);
}

TEST(ExecTranslation, FirmwareRewriteBetweenBootsRetranslates) {
    platform::NodeConfig cfg;
    cfg.name = "node";
    cfg.translate = true;
    cfg.translation_cache = std::make_shared<platform::TranslationCache>();
    platform::Node node(cfg);

    const isa::Program first = isa::assemble(R"(
        loop:
            addi r1, r1, 1
            ecall 1
            j loop
    )",
                                             kCodeBase);
    const isa::Program second = isa::assemble(R"(
        loop:
            addi r1, r1, 3
            ecall 1
            j loop
    )",
                                              kCodeBase);

    node.load_and_start(first);
    ASSERT_TRUE(node.cpu.translation_active());
    EXPECT_EQ(cfg.translation_cache->size(), 1u);
    node.run(100);
    const std::uint32_t r1_first = node.cpu.reg(1);
    EXPECT_GT(r1_first, 0u);

    // Rewrite the firmware (new image, same address) and restart: the
    // stale translation must be replaced, not reused — the cache keys
    // on code content, so the second image is a second entry.
    node.load_and_start(second);
    ASSERT_TRUE(node.cpu.translation_active());
    EXPECT_EQ(cfg.translation_cache->size(), 2u);
    EXPECT_EQ(cfg.translation_cache->misses(), 2u);
    node.run(100);
    // Program two advances by 3 per iteration: values diverge.
    EXPECT_NE(node.cpu.reg(1), r1_first);
    EXPECT_EQ(node.cpu.reg(1) % 3, 0u);
}

TEST(ExecTranslation, FleetSharesOneTranslationPerImage) {
    platform::FleetConfig cfg;
    cfg.device_count = 4;
    cfg.resilient = false;
    cfg.worker_threads = 2;
    platform::Fleet fleet(cfg);

    // All devices run the same measured workload: one cache entry,
    // built once, shared by every node (including each reboot).
    EXPECT_EQ(fleet.translation_cache().size(), 1u);
    EXPECT_EQ(fleet.translation_cache().misses(), 1u);
    EXPECT_GE(fleet.translation_cache().hits(), cfg.device_count - 1);
    const isa::TranslationImage* shared = fleet.device(0).cpu.translation();
    ASSERT_NE(shared, nullptr);
    for (std::size_t i = 1; i < fleet.size(); ++i) {
        EXPECT_EQ(fleet.device(i).cpu.translation(), shared)
            << "device " << i << " built a private translation";
    }
    EXPECT_GT(shared->coverage(), 0.9) << "control loop should translate";

    fleet.run(20000);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        EXPECT_GT(fleet.device(i).cpu.translated_instret(), 0u);
    }
}

TEST(ExecTranslation, TranslateOffRunsInterpreted) {
    platform::FleetConfig on_cfg;
    on_cfg.device_count = 2;
    on_cfg.resilient = false;
    platform::FleetConfig off_cfg = on_cfg;
    off_cfg.translate = false;

    platform::Fleet on(on_cfg);
    platform::Fleet off(off_cfg);
    on.run(20000);
    off.run(20000);
    for (std::size_t i = 0; i < on.size(); ++i) {
        expect_same_state(on.device(i).cpu, off.device(i).cpu,
                          "device " + std::to_string(i));
        EXPECT_GT(on.device(i).cpu.translated_instret(), 0u);
        EXPECT_EQ(off.device(i).cpu.translated_instret(), 0u);
    }
    EXPECT_EQ(on.fleet_iterations(), off.fleet_iterations());
}

TEST(ExecTranslation, GadgetOutsideImageStaysUntranslated) {
    // Code injected outside the measured image (the paper's gadget-in-
    // data-region attack) executes through the interpreter even while a
    // translation is installed for the firmware window.
    platform::NodeConfig cfg;
    cfg.name = "node";
    platform::Node node(cfg);
    const isa::Program firmware = platform::control_loop_program();
    node.load_and_start(firmware);
    ASSERT_TRUE(node.cpu.translation_active());
    const isa::TranslationImage* image = node.cpu.translation();
    EXPECT_FALSE(image->contains(platform::gadget_origin()));

    const isa::Program gadget = isa::assemble(R"(
        addi r1, r0, 77
        halt
    )",
                                              platform::gadget_origin());
    node.app_ram.load(platform::gadget_origin() - kAppRamBase, gadget.code);
    node.cpu.set_pc(platform::gadget_origin());
    const std::uint64_t translated_before = node.cpu.translated_instret();
    (void)node.cpu.step();
    (void)node.cpu.step();
    EXPECT_EQ(node.cpu.reg(1), 77u);
    EXPECT_TRUE(node.cpu.halted());
    EXPECT_EQ(node.cpu.translated_instret(), translated_before)
        << "gadget instructions must not retire via the fast path";
}

TEST(ExecTranslation, CacheKeysDifferByContentBaseAndEntry) {
    const Bytes code_a = {1, 2, 3, 4};
    const Bytes code_b = {1, 2, 3, 5};
    using platform::TranslationCache;
    const auto base_key = TranslationCache::key_for(code_a, 0x100, 0x100);
    EXPECT_NE(TranslationCache::key_for(code_b, 0x100, 0x100), base_key);
    EXPECT_NE(TranslationCache::key_for(code_a, 0x200, 0x100), base_key);
    EXPECT_NE(TranslationCache::key_for(code_a, 0x100, 0x104), base_key);
    EXPECT_EQ(TranslationCache::key_for(code_a, 0x100, 0x100), base_key);
}

// --- proof-carrying check elision (docs/ANALYSIS.md) -----------------

// Every pointer is materialized in the same superblock as its
// accesses, so the block-local proof walk certifies all four memory
// operations per iteration: maximum elision, still lockstep.
isa::Program elidable_scan_program() {
    std::ostringstream os;
    os << "start:\n"
       << "    li   sp, " << platform::kStackTop << "\n"
       << "    li   r9, 40\n"
       << "loop:\n"
       << "    li   r7, " << platform::kDataBase << "\n"
       << "    lw   r1, r7, 0\n"
       << "    sw   r1, r7, 4\n"
       << "    lw   r2, r7, 8\n"
       << "    sw   r2, r7, 12\n"
       << "    addi r9, r9, -1\n"
       << "    bne  r9, r0, loop\n"
       << "    halt\n";
    return isa::assemble(os.str(), kCodeBase);
}

TEST(ExecElision, ProvenAccessesElideAndStayLockstep) {
    const isa::Program p = elidable_scan_program();
    Machine interp;
    Machine elided;
    Machine checked;
    interp.load(p, /*translate=*/false);
    elided.load(p, /*translate=*/true);
    checked.load(p, /*translate=*/true);
    checked.cpu.set_check_elision(false);

    for (std::uint64_t s = 0; s < 8192 && !interp.cpu.halted(); ++s) {
        (void)interp.cpu.step();
    }
    ASSERT_TRUE(interp.cpu.halted());
    (void)elided.cpu.run_steps(8192);
    (void)checked.cpu.run_steps(8192);
    expect_same_state(interp.cpu, elided.cpu, "elided final state");
    expect_same_state(interp.cpu, checked.cpu, "checked final state");

    // 40 iterations x 4 proven accesses, all through the fast path.
    EXPECT_EQ(elided.cpu.elided_ops(), 160u);
    EXPECT_EQ(checked.cpu.elided_ops(), 0u);
}

TEST(ExecElision, OobCapableAccessIsNeverElided) {
    // Red-team soundness: the store address is loaded from (untrusted,
    // attacker-writable) memory, so no proof can bound it — its safe
    // bits must stay clear even though the neighbouring constant-
    // address load is proven. An elided store here would skip the very
    // check that catches the out-of-bounds write.
    std::ostringstream os;
    os << "start:\n"
       << "    li   sp, " << platform::kStackTop << "\n"
       << "    li   r7, " << platform::kDataBase << "\n"
       << "probe:\n"
       << "    lw   r1, r7, 0\n"
       << "attack:\n"
       << "    sw   r0, r1, 0\n"
       << "    halt\n";
    const isa::Program p = isa::assemble(os.str(), kCodeBase);

    const isa::TranslationImage image =
        analysis::translate_image(p.code, p.origin, p.symbol("start"));
    const std::size_t probe_idx = (p.symbol("probe") - p.origin) / 4;
    const std::size_t attack_idx = (p.symbol("attack") - p.origin) / 4;
    EXPECT_NE(image.uops[probe_idx].safe & isa::Uop::kSafeLoad, 0u)
        << "constant in-bounds load should be proven";
    EXPECT_EQ(image.uops[attack_idx].safe, 0u)
        << "memory-derived store address must never be elided";

    // Runtime differential: the data word holds 0, so the store aims
    // at unmapped address 0 — the checked slow path faults identically
    // on both engines, and only the proven load was elided.
    Machine interp;
    Machine elided;
    interp.load(p, /*translate=*/false);
    elided.load(p, /*translate=*/true);
    for (int s = 0; s < 32; ++s) {
        (void)interp.cpu.step();
    }
    (void)elided.cpu.run_steps(32);
    expect_same_state(interp.cpu, elided.cpu, "oob store final state");
    EXPECT_GT(interp.cpu.trap_count(), 0u);
    EXPECT_EQ(elided.cpu.elided_ops(), 1u);
}

TEST(ExecElision, FleetSharesOneAnalysisArtifactPerImage) {
    platform::FleetConfig cfg;
    cfg.device_count = 4;
    cfg.resilient = false;
    cfg.worker_threads = 2;
    platform::Fleet fleet(cfg);

    // One proof artifact per firmware image, derived once and shared —
    // the admission report cache mirrors the translation cache.
    EXPECT_EQ(fleet.analysis_cache().size(), 1u);
    EXPECT_EQ(fleet.analysis_cache().misses(), 1u);
    EXPECT_GE(fleet.analysis_cache().hits(), cfg.device_count - 1);

    fleet.run(20000);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
        EXPECT_GT(fleet.device(i).cpu.elided_ops(), 0u)
            << "device " << i << " never reached the check-elided path";
    }
}

TEST(ExecElision, StateIdenticalAcrossWorkersQuiescenceAndElision) {
    // Bit-identical device state no matter how the fleet is driven:
    // 1 vs 8 workers, quiescence fast-forward on/off, check elision
    // on/off — all against one serial fully-checked reference.
    const auto build = [](std::size_t workers, bool quiescence,
                          bool elide) {
        platform::FleetConfig cfg;
        cfg.device_count = 8;
        cfg.resilient = false;
        cfg.interrupt_workload = true;
        cfg.worker_threads = workers;
        cfg.quiescence = quiescence;
        cfg.elide_proven_checks = elide;
        auto fleet = std::make_unique<platform::Fleet>(cfg);
        fleet->run(20000);
        return fleet;
    };
    const auto ref = build(1, false, false);
    const struct Variant {
        std::size_t workers;
        bool quiescence;
        bool elide;
        const char* tag;
    } variants[] = {
        {8, false, false, "8 workers"},
        {1, true, false, "quiescence"},
        {1, false, true, "elision"},
        {8, true, true, "8 workers + quiescence + elision"},
    };
    for (const Variant& v : variants) {
        const auto fleet = build(v.workers, v.quiescence, v.elide);
        for (std::size_t i = 0; i < fleet->size(); ++i) {
            expect_same_state(
                ref->device(i).cpu, fleet->device(i).cpu,
                std::string(v.tag) + " device " + std::to_string(i));
        }
    }
}

#ifdef NDEBUG
TEST(CpuRegisters, OutOfRangeAccessIsHardenedInRelease) {
    mem::Bus bus;
    Cpu cpu("cpu", bus);
    EXPECT_EQ(cpu.reg(16), 0u);
    cpu.set_reg(16, 5);  // Discarded, not UB.
    EXPECT_EQ(cpu.reg(0), 0u);
}
#else
TEST(CpuRegistersDeathTest, OutOfRangeAccessAssertsInDebug) {
    mem::Bus bus;
    Cpu cpu("cpu", bus);
    EXPECT_DEATH((void)cpu.reg(16), "register index out of range");
    EXPECT_DEATH(cpu.set_reg(16, 5), "register index out of range");
}
#endif

}  // namespace
}  // namespace cres
