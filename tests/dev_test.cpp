// Peripheral tests: UART, timer, watchdog, DMA, sensor, actuator,
// NIC/link (incl. MITM tap), TRNG, power sensor.
#include <gtest/gtest.h>

#include "dev/actuator.h"
#include "dev/dma.h"
#include "dev/nic.h"
#include "dev/power.h"
#include "dev/sensor.h"
#include "dev/timer.h"
#include "dev/trng.h"
#include "dev/uart.h"
#include "dev/watchdog.h"
#include "mem/ram.h"
#include "util/error.h"

namespace cres::dev {
namespace {

const mem::BusAttr kCpuAttr{mem::Master::kCpu, false, true};

std::uint32_t read_reg(Device& dev, mem::Addr offset) {
    std::uint32_t out = 0;
    EXPECT_EQ(dev.read(offset, 4, out, kCpuAttr), mem::BusResponse::kOk);
    return out;
}

void write_reg(Device& dev, mem::Addr offset, std::uint32_t value) {
    EXPECT_EQ(dev.write(offset, 4, value, kCpuAttr), mem::BusResponse::kOk);
}

TEST(Device, RejectsUnalignedAccessAllowsNarrow) {
    Uart uart("u");
    std::uint32_t out = 0;
    EXPECT_EQ(uart.read(1, 4, out, kCpuAttr), mem::BusResponse::kDeviceError);
    // Sub-word access at a register base is allowed (DMA byte streams).
    EXPECT_EQ(uart.read(4, 1, out, kCpuAttr), mem::BusResponse::kOk);
    EXPECT_EQ(out, 1u);  // STATUS.tx_ready in the low byte.
}

TEST(Uart, TransmitCollectsOutput) {
    Uart uart("u");
    for (char c : std::string("hi")) {
        write_reg(uart, Uart::kRegTxData, static_cast<std::uint8_t>(c));
    }
    EXPECT_EQ(uart.output(), "hi");
    uart.clear_output();
    EXPECT_TRUE(uart.output().empty());
}

TEST(Uart, ReceivePath) {
    Uart uart("u");
    EXPECT_EQ(read_reg(uart, Uart::kRegStatus) & 2u, 0u);
    uart.inject_input("ok");
    EXPECT_EQ(read_reg(uart, Uart::kRegStatus) & 2u, 2u);
    EXPECT_EQ(read_reg(uart, Uart::kRegRxData), 'o');
    EXPECT_EQ(read_reg(uart, Uart::kRegRxData), 'k');
    EXPECT_EQ(read_reg(uart, Uart::kRegRxData), 0u);  // Empty.
}

TEST(Uart, RxRaisesIrq) {
    Uart uart("u");
    unsigned raised = 99;
    uart.connect_irq([&](unsigned line) { raised = line; }, 5);
    uart.inject_input("x");
    EXPECT_EQ(raised, 5u);
}

TEST(Timer, MatchRaisesIrqAndReloads) {
    Timer timer("t");
    int irqs = 0;
    timer.connect_irq([&](unsigned) { ++irqs; }, 1);
    timer.configure(3, /*auto_reload=*/true);
    for (int i = 0; i < 9; ++i) timer.tick(static_cast<sim::Cycle>(i));
    EXPECT_EQ(irqs, 3);
    EXPECT_EQ(timer.matches(), 3u);
}

TEST(Timer, DisabledDoesNotCount) {
    Timer timer("t");
    for (int i = 0; i < 10; ++i) timer.tick(static_cast<sim::Cycle>(i));
    EXPECT_EQ(read_reg(timer, Timer::kRegCount), 0u);
}

TEST(Timer, OneShotWithoutReload) {
    Timer timer("t");
    timer.configure(2, /*auto_reload=*/false);
    for (int i = 0; i < 10; ++i) timer.tick(static_cast<sim::Cycle>(i));
    EXPECT_EQ(timer.matches(), 1u);
}

TEST(Timer, GuestVisibleRegisters) {
    Timer timer("t");
    write_reg(timer, Timer::kRegCompare, 5);
    write_reg(timer, Timer::kRegCtrl, Timer::kCtrlEnable);
    for (int i = 0; i < 4; ++i) timer.tick(static_cast<sim::Cycle>(i));
    EXPECT_EQ(read_reg(timer, Timer::kRegCount), 4u);
    EXPECT_EQ(read_reg(timer, Timer::kRegCompare), 5u);
}

TEST(Watchdog, ExpiresWithoutKick) {
    Watchdog wd("w");
    int expiries = 0;
    wd.set_expiry_callback([&] { ++expiries; });
    wd.arm(5);
    for (int i = 0; i < 5; ++i) wd.tick(static_cast<sim::Cycle>(i));
    EXPECT_EQ(expiries, 1);
    EXPECT_EQ(wd.expiries(), 1u);
}

TEST(Watchdog, KickPreventsExpiry) {
    Watchdog wd("w");
    wd.arm(5);
    for (int i = 0; i < 20; ++i) {
        wd.tick(static_cast<sim::Cycle>(i));
        if (i % 3 == 0) wd.kick();
    }
    EXPECT_EQ(wd.expiries(), 0u);
}

TEST(Watchdog, GuestKickViaRegister) {
    Watchdog wd("w");
    wd.arm(4);
    for (int i = 0; i < 3; ++i) wd.tick(static_cast<sim::Cycle>(i));
    write_reg(wd, Watchdog::kRegKick, 1);
    for (int i = 0; i < 3; ++i) wd.tick(static_cast<sim::Cycle>(i));
    EXPECT_EQ(wd.expiries(), 0u);
}

TEST(Watchdog, RearmsAfterExpiry) {
    Watchdog wd("w");
    wd.arm(3);
    for (int i = 0; i < 9; ++i) wd.tick(static_cast<sim::Cycle>(i));
    EXPECT_EQ(wd.expiries(), 3u);
}

class DmaFixture : public ::testing::Test {
protected:
    DmaFixture() : ram("ram", 0x1000), secret("secret", 0x100),
                   dma("dma0", bus) {
        bus.map(mem::RegionConfig{"ram", 0x0, 0x1000, false, false}, ram);
        bus.map(mem::RegionConfig{"secret", 0x8000, 0x100, true, false},
                secret);
        ram.load(0, Bytes{1, 2, 3, 4, 5, 6, 7, 8});
        secret.load(0, Bytes{0xaa, 0xbb, 0xcc, 0xdd});
    }
    mem::Bus bus;
    mem::Ram ram;
    mem::Ram secret;
    DmaEngine dma;
};

TEST_F(DmaFixture, CopiesWithinOpenMemory) {
    dma.start_transfer(0x0, 0x100, 8);
    for (int i = 0; i < 10 && dma.busy(); ++i) {
        dma.tick(static_cast<sim::Cycle>(i));
    }
    EXPECT_FALSE(dma.busy());
    EXPECT_EQ(dma.status() & DmaEngine::kStatusDone, DmaEngine::kStatusDone);
    EXPECT_EQ(ram.dump(0x100, 8), (Bytes{1, 2, 3, 4, 5, 6, 7, 8}));
    EXPECT_EQ(dma.bytes_transferred(), 8u);
    EXPECT_EQ(dma.transfers_completed(), 1u);
}

TEST_F(DmaFixture, NonSecureTransferFromSecureRegionErrors) {
    dma.start_transfer(0x8000, 0x200, 4, /*secure=*/false);
    for (int i = 0; i < 10 && dma.busy(); ++i) {
        dma.tick(static_cast<sim::Cycle>(i));
    }
    EXPECT_EQ(dma.status() & DmaEngine::kStatusError, DmaEngine::kStatusError);
    EXPECT_EQ(ram.dump(0x200, 4), (Bytes{0, 0, 0, 0}));
}

TEST_F(DmaFixture, SecureTransferSucceeds) {
    dma.start_transfer(0x8000, 0x200, 4, /*secure=*/true);
    for (int i = 0; i < 10 && dma.busy(); ++i) {
        dma.tick(static_cast<sim::Cycle>(i));
    }
    EXPECT_EQ(ram.dump(0x200, 4), (Bytes{0xaa, 0xbb, 0xcc, 0xdd}));
}

TEST_F(DmaFixture, GuestProgrammingViaRegisters) {
    write_reg(dma, DmaEngine::kRegSrc, 0x0);
    write_reg(dma, DmaEngine::kRegDst, 0x300);
    write_reg(dma, DmaEngine::kRegLen, 4);
    write_reg(dma, DmaEngine::kRegCtrl, DmaEngine::kCtrlStart);
    EXPECT_TRUE(dma.busy());
    dma.tick(0);
    EXPECT_EQ(ram.dump(0x300, 4), (Bytes{1, 2, 3, 4}));
}

TEST_F(DmaFixture, UnprivilegedCannotClaimSecure) {
    const mem::BusAttr user{mem::Master::kCpu, false, false};
    std::uint32_t v = 0x8000;
    (void)dma.write(DmaEngine::kRegSrc, 4, v, user);
    v = 0x200;
    (void)dma.write(DmaEngine::kRegDst, 4, v, user);
    v = 4;
    (void)dma.write(DmaEngine::kRegLen, 4, v, user);
    v = DmaEngine::kCtrlStart | DmaEngine::kCtrlClaimSecure;
    (void)dma.write(DmaEngine::kRegCtrl, 4, v, user);
    for (int i = 0; i < 10 && dma.busy(); ++i) {
        dma.tick(static_cast<sim::Cycle>(i));
    }
    // Secure claim ignored for unprivileged master -> transfer faults.
    EXPECT_EQ(dma.status() & DmaEngine::kStatusError, DmaEngine::kStatusError);
}

TEST_F(DmaFixture, CompletionIrq) {
    int irqs = 0;
    dma.connect_irq([&](unsigned) { ++irqs; }, 3);
    dma.start_transfer(0, 0x100, 4);
    for (int i = 0; i < 5; ++i) dma.tick(static_cast<sim::Cycle>(i));
    EXPECT_EQ(irqs, 1);
}

TEST(FixedPoint, RoundTrip) {
    EXPECT_DOUBLE_EQ(from_fixed(to_fixed(1.5)), 1.5);
    EXPECT_DOUBLE_EQ(from_fixed(to_fixed(-2.25)), -2.25);
    EXPECT_NEAR(from_fixed(to_fixed(3.14159)), 3.14159, 1e-4);
}

TEST(Sensor, SamplesSignalAtPeriod) {
    Sensor sensor("s", [](sim::Cycle c) { return static_cast<double>(c); },
                  10);
    for (sim::Cycle c = 0; c < 25; ++c) sensor.tick(c);
    EXPECT_EQ(sensor.samples(), 2u);
    EXPECT_NEAR(sensor.value(), 19.0, 1e-3);  // Sampled at c==19.
}

TEST(Sensor, SpoofOverridesSignal) {
    Sensor sensor("s", [](sim::Cycle) { return 5.0; }, 1);
    sensor.tick(0);
    EXPECT_NEAR(sensor.value(), 5.0, 1e-3);
    sensor.set_spoof([](sim::Cycle) { return 99.0; });
    sensor.tick(1);
    EXPECT_NEAR(sensor.value(), 99.0, 1e-3);
    EXPECT_NEAR(sensor.truth(1), 5.0, 1e-3);  // Physical truth unchanged.
    sensor.clear_spoof();
    sensor.tick(2);
    EXPECT_NEAR(sensor.value(), 5.0, 1e-3);
}

TEST(Sensor, GuestReadsFixedPoint) {
    Sensor sensor("s", [](sim::Cycle) { return -1.5; }, 1);
    sensor.tick(0);
    const auto raw = static_cast<std::int32_t>(read_reg(sensor,
                                                        Sensor::kRegData));
    EXPECT_NEAR(from_fixed(raw), -1.5, 1e-3);
}

TEST(Sensor, RejectsBadConstruction) {
    EXPECT_THROW(Sensor("s", nullptr, 1), Error);
    EXPECT_THROW(Sensor("s", [](sim::Cycle) { return 0.0; }, 0), Error);
}

TEST(Actuator, RecordsAndClampsCommands) {
    Actuator act("a", -10.0, 10.0);
    act.tick(100);
    write_reg(act, Actuator::kRegCommand,
              static_cast<std::uint32_t>(to_fixed(5.0)));
    write_reg(act, Actuator::kRegCommand,
              static_cast<std::uint32_t>(to_fixed(50.0)));  // Clamped.
    ASSERT_EQ(act.command_count(), 2u);
    EXPECT_DOUBLE_EQ(act.history()[0].applied, 5.0);
    EXPECT_DOUBLE_EQ(act.history()[1].applied, 10.0);
    EXPECT_TRUE(act.history()[1].clamped);
    EXPECT_EQ(act.clamped_count(), 1u);
    EXPECT_EQ(act.history()[0].at, 100u);
    EXPECT_DOUBLE_EQ(act.current(), 10.0);
    EXPECT_DOUBLE_EQ(act.total_travel(), 10.0);  // 0->5->10.
}

TEST(Actuator, RejectsInvertedRange) {
    EXPECT_THROW(Actuator("a", 1.0, -1.0), Error);
}

TEST(NicLink, FrameRoundTrip) {
    Nic a("nicA"), b("nicB");
    Link link;
    link.attach(a, b);

    a.send_frame(Bytes{1, 2, 3});
    ASSERT_EQ(b.pending_frames(), 1u);
    const auto frame = b.receive_frame();
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(*frame, (Bytes{1, 2, 3}));
    EXPECT_FALSE(b.receive_frame().has_value());
    EXPECT_EQ(link.frames_carried(), 1u);
}

TEST(NicLink, TapCanModifyAndDrop) {
    Nic a("nicA"), b("nicB");
    Link link;
    link.attach(a, b);
    int seen = 0;
    link.set_tap([&](const Bytes& frame, bool from_a) -> std::optional<Bytes> {
        ++seen;
        EXPECT_TRUE(from_a);
        if (frame[0] == 0xff) return std::nullopt;  // Drop.
        Bytes modified = frame;
        modified[0] ^= 0x80;
        return modified;
    });

    a.send_frame(Bytes{0x01});
    a.send_frame(Bytes{0xff});
    EXPECT_EQ(seen, 2);
    ASSERT_EQ(b.pending_frames(), 1u);
    EXPECT_EQ((*b.receive_frame())[0], 0x81);
    EXPECT_EQ(link.frames_dropped(), 1u);
}

TEST(NicLink, InjectionForgesFrames) {
    Nic a("nicA"), b("nicB");
    Link link;
    link.attach(a, b);
    link.inject(Bytes{9, 9}, /*to_a=*/true);
    ASSERT_EQ(a.pending_frames(), 1u);
    EXPECT_EQ(*a.receive_frame(), (Bytes{9, 9}));
}

TEST(NicLink, GuestRegisterInterface) {
    Nic a("nicA"), b("nicB");
    Link link;
    link.attach(a, b);

    write_reg(a, Nic::kRegTxByte, 'h');
    write_reg(a, Nic::kRegTxByte, 'i');
    write_reg(a, Nic::kRegTxSend, 1);

    EXPECT_EQ(read_reg(b, Nic::kRegRxPending), 1u);
    EXPECT_EQ(read_reg(b, Nic::kRegRxAvail), 2u);
    EXPECT_EQ(read_reg(b, Nic::kRegRxByte), 'h');
    EXPECT_EQ(read_reg(b, Nic::kRegRxByte), 'i');
    EXPECT_EQ(read_reg(b, Nic::kRegRxAvail), 0u);
    write_reg(b, Nic::kRegRxNext, 1);
    EXPECT_EQ(read_reg(b, Nic::kRegRxPending), 0u);
}

TEST(NicLink, DoubleAttachRejected) {
    Nic a("a"), b("b"), c("c");
    Link link;
    link.attach(a, b);
    EXPECT_THROW(link.attach(a, c), NetError);
}

TEST(NicLink, UnboundSendRejected) {
    Nic a("a");
    EXPECT_THROW(a.send_frame(Bytes{1}), NetError);
}

TEST(Trng, ProducesVaryingWords) {
    Trng trng("trng", 42);
    const auto a = read_reg(trng, Trng::kRegData);
    const auto b = read_reg(trng, Trng::kRegData);
    EXPECT_NE(a, b);
    EXPECT_EQ(read_reg(trng, Trng::kRegReads), 2u);
    std::uint32_t io = 0;
    EXPECT_EQ(trng.write(Trng::kRegData, 4, io, kCpuAttr),
              mem::BusResponse::kReadOnly);
}

TEST(PowerSensor, NominalReadings) {
    PowerSensor ps("pwr", 3.3, 45.0);
    EXPECT_NEAR(from_fixed(static_cast<std::int32_t>(
                    read_reg(ps, PowerSensor::kRegVoltage))),
                3.3, 1e-3);
    EXPECT_NEAR(from_fixed(static_cast<std::int32_t>(
                    read_reg(ps, PowerSensor::kRegTemp))),
                45.0, 1e-3);
}

TEST(PowerSensor, GlitchIsTransient) {
    PowerSensor ps("pwr", 3.3, 45.0);
    ps.inject_glitch(1.1, 3);
    EXPECT_TRUE(ps.glitch_active());
    EXPECT_NEAR(ps.voltage(), 1.1, 1e-9);
    for (int i = 0; i < 3; ++i) ps.tick(static_cast<sim::Cycle>(i));
    EXPECT_FALSE(ps.glitch_active());
    EXPECT_NEAR(ps.voltage(), 3.3, 1e-9);
}

}  // namespace
}  // namespace cres::dev
