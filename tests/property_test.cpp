// Property-based tests: randomized sweeps over invariants that must
// hold for *any* input — encoding round-trips, CPU arithmetic vs a
// host-side reference, evidence-chain integrity under random operation
// sequences, serialization round-trips, and crypto self-consistency.
#include <gtest/gtest.h>

#include "core/ssm/evidence.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "isa/assembler.h"
#include "isa/cpu.h"
#include "mem/ram.h"
#include "util/rng.h"
#include "util/serial.h"

namespace cres {
namespace {

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

// ---- ISA encoding ---------------------------------------------------------

TEST_P(SeededProperty, EncodingRoundTripsAllFields) {
    Rng rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        isa::Instruction insn;
        insn.opcode = isa::Opcode::kAddi;  // Any imm-style opcode.
        insn.rd = static_cast<std::uint8_t>(rng.uniform(16));
        insn.rs1 = static_cast<std::uint8_t>(rng.uniform(16));
        insn.imm = static_cast<std::uint16_t>(rng.uniform(0x10000));
        const isa::Instruction back = isa::decode(isa::encode(insn));
        EXPECT_EQ(back.rd, insn.rd);
        EXPECT_EQ(back.rs1, insn.rs1);
        EXPECT_EQ(back.imm, insn.imm);

        isa::Instruction alu;
        alu.opcode = isa::Opcode::kXor;
        alu.rd = static_cast<std::uint8_t>(rng.uniform(16));
        alu.rs1 = static_cast<std::uint8_t>(rng.uniform(16));
        alu.rs2 = static_cast<std::uint8_t>(rng.uniform(16));
        const isa::Instruction alu_back = isa::decode(isa::encode(alu));
        EXPECT_EQ(alu_back.rs2, alu.rs2);
    }
}

// ---- CPU vs reference model ------------------------------------------------

/// Runs a random straight-line ALU program on the CPU and on a C++
/// reference model; final register files must agree.
TEST_P(SeededProperty, CpuMatchesReferenceOnRandomAluPrograms) {
    Rng rng(GetParam() ^ 0xa1u);

    mem::Bus bus;
    mem::Ram ram("ram", 0x10000);
    bus.map(mem::RegionConfig{"ram", 0, 0x10000, false, false}, ram);
    isa::Cpu cpu("cpu0", bus);

    const char* ops[] = {"add", "sub", "and", "or", "xor", "mul",
                         "slt", "sltu", "shl", "shr", "sra"};

    std::ostringstream program;
    std::array<std::uint32_t, 16> ref{};

    // Seed registers with addi/lui+ori pairs.
    for (unsigned r = 1; r <= 6; ++r) {
        const auto v = static_cast<std::uint32_t>(rng.next());
        program << "li r" << r << ", " << v << "\n";
        ref[r] = v;
    }
    for (int i = 0; i < 60; ++i) {
        const char* op = ops[rng.uniform(std::size(ops))];
        const unsigned rd = 1 + static_cast<unsigned>(rng.uniform(12));
        const unsigned rs1 = static_cast<unsigned>(rng.uniform(13));
        const unsigned rs2 = static_cast<unsigned>(rng.uniform(13));
        program << op << " r" << rd << ", r" << rs1 << ", r" << rs2 << "\n";

        const std::uint32_t a = ref[rs1];
        const std::uint32_t b = ref[rs2];
        std::uint32_t result = 0;
        const std::string o = op;
        if (o == "add") result = a + b;
        else if (o == "sub") result = a - b;
        else if (o == "and") result = a & b;
        else if (o == "or") result = a | b;
        else if (o == "xor") result = a ^ b;
        else if (o == "mul") result = a * b;
        else if (o == "slt")
            result = static_cast<std::int32_t>(a) <
                             static_cast<std::int32_t>(b)
                         ? 1
                         : 0;
        else if (o == "sltu") result = a < b ? 1 : 0;
        else if (o == "shl") result = a << (b & 31);
        else if (o == "shr") result = a >> (b & 31);
        else if (o == "sra")
            result = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(a) >> static_cast<int>(b & 31));
        if (rd != 0) ref[rd] = result;
    }
    program << "halt\n";

    const isa::Program p = isa::assemble(program.str(), 0);
    ram.load(0, p.code);
    cpu.reset(0);
    int steps = 0;
    while (!cpu.halted() && steps++ < 1000) cpu.step();
    ASSERT_TRUE(cpu.halted());

    for (unsigned r = 0; r < 16; ++r) {
        if (r == 13 || r == 14) continue;  // sp/lr unused either way.
        EXPECT_EQ(cpu.reg(r), ref[r]) << "r" << r;
    }
}

// ---- Evidence chain ---------------------------------------------------------

TEST_P(SeededProperty, EvidenceChainSurvivesRandomAppends) {
    Rng rng(GetParam() ^ 0xe7u);
    core::EvidenceLog log(to_bytes("k"));
    const std::size_t n = 5 + rng.uniform(60);
    for (std::size_t i = 0; i < n; ++i) {
        log.append(rng.next() & 0xffffff, "event",
                   "detail-" + std::to_string(rng.uniform(1000)),
                   rng.bytes(rng.uniform(40)));
    }
    EXPECT_TRUE(log.verify_chain());

    // Export/import round-trip preserves verifiability.
    const Bytes wire = log.serialize();
    const core::EvidenceLog imported =
        core::EvidenceLog::deserialize(wire, to_bytes("k"));
    EXPECT_EQ(imported.size(), log.size());
    EXPECT_TRUE(imported.verify_chain());
    EXPECT_EQ(imported.head(), log.head());

    // Any single random mutation breaks the chain.
    core::EvidenceLog tampered =
        core::EvidenceLog::deserialize(wire, to_bytes("k"));
    tampered.tamper_detail(rng.uniform(tampered.size()), "scrubbed");
    EXPECT_FALSE(tampered.verify_chain());
}

// ---- Serialization -----------------------------------------------------------

TEST_P(SeededProperty, BinaryRoundTripRandomSequences) {
    Rng rng(GetParam() ^ 0x5eu);
    for (int trial = 0; trial < 50; ++trial) {
        BinaryWriter w;
        std::vector<std::uint64_t> values;
        std::vector<Bytes> blobs;
        const int ops = 1 + static_cast<int>(rng.uniform(20));
        for (int i = 0; i < ops; ++i) {
            const std::uint64_t v = rng.next();
            values.push_back(v);
            w.u64(v);
            Bytes b = rng.bytes(rng.uniform(30));
            blobs.push_back(b);
            w.blob(b);
        }
        BinaryReader r(w.data());
        for (int i = 0; i < ops; ++i) {
            EXPECT_EQ(r.u64(), values[static_cast<std::size_t>(i)]);
            EXPECT_EQ(r.blob(), blobs[static_cast<std::size_t>(i)]);
        }
        EXPECT_TRUE(r.done());
    }
}

// ---- Crypto self-consistency ---------------------------------------------------

TEST_P(SeededProperty, AesRoundTripsRandomData) {
    Rng rng(GetParam() ^ 0xaeu);
    const auto key = crypto::aes_key_from_bytes(rng.bytes(16));
    const crypto::Aes128 aes(key);
    for (int i = 0; i < 20; ++i) {
        const Bytes pt = rng.bytes(rng.uniform(200));
        crypto::Aes128Block iv;
        rng.fill(iv);
        EXPECT_EQ(aes.cbc_decrypt(aes.cbc_encrypt(pt, iv), iv), pt);
        EXPECT_EQ(aes.ctr_crypt(aes.ctr_crypt(pt, iv), iv), pt);
    }
}

TEST_P(SeededProperty, HmacDistinctForDistinctInputs) {
    Rng rng(GetParam() ^ 0x11u);
    const Bytes key = rng.bytes(32);
    Bytes m1 = rng.bytes(64);
    Bytes m2 = m1;
    m2[rng.uniform(m2.size())] ^= static_cast<std::uint8_t>(
        1 + rng.uniform(255));
    EXPECT_NE(crypto::hmac_sha256(key, m1), crypto::hmac_sha256(key, m2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---- Evidence export error paths --------------------------------------------

TEST(EvidenceExport, RejectsGarbage) {
    EXPECT_THROW(core::EvidenceLog::deserialize(Bytes{1, 2, 3},
                                                to_bytes("k")),
                 Error);
    BinaryWriter w;
    w.u32(0x43455644);
    w.u64(5);  // Claims 5 records, provides none.
    EXPECT_THROW(core::EvidenceLog::deserialize(w.data(), to_bytes("k")),
                 Error);
}

TEST(EvidenceExport, ImportedTruncationDetected) {
    core::EvidenceLog log(to_bytes("k"));
    log.append(1, "event", "a");
    log.append(2, "event", "b");
    const auto seal = log.seal();

    // Regulator receives a truncated export (attacker dropped record 2)
    // but holds the earlier seal covering both records.
    core::EvidenceLog one(to_bytes("k"));
    one.append(1, "event", "a");
    EXPECT_FALSE(core::EvidenceLog::verify_seal(one, seal, to_bytes("k")));
}

}  // namespace
}  // namespace cres
