// Secure-boot chain tests: image format, signing/verification, measured
// boot, anti-rollback, multi-stage chains and the A/B update agent.
#include <gtest/gtest.h>

#include "boot/image.h"
#include "boot/measured.h"
#include "boot/secureboot.h"
#include "boot/update.h"
#include "util/error.h"

namespace cres::boot {
namespace {

crypto::Hash256 seed(std::uint8_t fill) {
    crypto::Hash256 s;
    s.fill(fill);
    return s;
}

class BootFixture : public ::testing::Test {
protected:
    BootFixture()
        : vendor_key(seed(1), 5),
          rom(vendor_key.public_key(), counters),
          memory("flash", 0x10000) {}

    FirmwareImage make_image(const std::string& name, std::uint32_t version,
                             mem::Addr load = 0x1000,
                             std::size_t payload_size = 256) {
        FirmwareImage image;
        image.name = name;
        image.security_version = version;
        image.load_addr = load;
        image.entry_point = load;
        image.payload.resize(payload_size);
        for (std::size_t i = 0; i < payload_size; ++i) {
            image.payload[i] = static_cast<std::uint8_t>(i ^ version);
        }
        ImageSigner signer(vendor_key);
        signer.sign(image);
        return image;
    }

    crypto::MerkleSigner vendor_key;
    crypto::MonotonicCounterBank counters;
    BootRom rom;
    mem::Ram memory;
    PcrBank pcrs;
};

TEST_F(BootFixture, ImageSerializationRoundTrip) {
    const FirmwareImage image = make_image("fw", 3);
    const FirmwareImage parsed = FirmwareImage::parse(image.serialize());
    EXPECT_EQ(parsed.name, "fw");
    EXPECT_EQ(parsed.security_version, 3u);
    EXPECT_EQ(parsed.load_addr, 0x1000u);
    EXPECT_EQ(parsed.payload, image.payload);
    EXPECT_EQ(parsed.digest(), image.digest());
    EXPECT_TRUE(verify_image(parsed, vendor_key.public_key()));
}

TEST_F(BootFixture, ParseRejectsGarbage) {
    EXPECT_THROW(FirmwareImage::parse(Bytes{1, 2, 3}), BootError);
    Bytes bad = make_image("fw", 1).serialize();
    bad[0] ^= 0xff;  // Corrupt magic.
    EXPECT_THROW(FirmwareImage::parse(bad), BootError);
}

TEST_F(BootFixture, ParseRejectsTrailingBytes) {
    // Trailing bytes sit outside the signed digest, so one signature
    // must not validate many wire forms (update-channel malleability).
    Bytes padded = make_image("fw", 1).serialize();
    padded.push_back(0x00);
    EXPECT_THROW(FirmwareImage::parse(padded), BootError);
}

TEST_F(BootFixture, ParseRejectsEveryTruncation) {
    const Bytes wire = make_image("fw", 1).serialize();
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        EXPECT_THROW(FirmwareImage::parse(BytesView(wire.data(), cut)),
                     BootError)
            << "prefix length " << cut;
    }
}

TEST_F(BootFixture, UnsignedImageFailsVerification) {
    FirmwareImage image = make_image("fw", 1);
    image.signature.clear();
    EXPECT_FALSE(verify_image(image, vendor_key.public_key()));
}

TEST_F(BootFixture, TamperedPayloadFailsVerification) {
    FirmwareImage image = make_image("fw", 1);
    image.payload[10] ^= 1;
    EXPECT_FALSE(verify_image(image, vendor_key.public_key()));
}

TEST_F(BootFixture, WrongKeyFailsVerification) {
    crypto::MerkleSigner other(seed(9), 3);
    const FirmwareImage image = make_image("fw", 1);
    EXPECT_FALSE(verify_image(image, other.public_key()));
}

TEST_F(BootFixture, CorruptSignatureBytesFailSafely) {
    FirmwareImage image = make_image("fw", 1);
    image.signature.resize(4);
    EXPECT_FALSE(verify_image(image, vendor_key.public_key()));
}

TEST_F(BootFixture, SuccessfulBootLoadsAndMeasures) {
    const FirmwareImage image = make_image("fw", 1);
    const BootReport report = rom.boot_chain({image}, memory, 0x0, pcrs);

    EXPECT_TRUE(report.success);
    EXPECT_EQ(report.entry_point, 0x1000u);
    EXPECT_EQ(memory.dump(0x1000, image.payload.size()), image.payload);
    ASSERT_EQ(pcrs.log().size(), 1u);
    EXPECT_EQ(pcrs.log()[0].measurement, image.digest());
    EXPECT_GT(report.verification_cost_cycles, 0u);
    EXPECT_EQ(counters.value("fw_version"), 1u);
}

TEST_F(BootFixture, BadSignatureAborts) {
    FirmwareImage image = make_image("fw", 1);
    image.payload[0] ^= 1;
    const BootReport report = rom.boot_chain({image}, memory, 0x0, pcrs);
    EXPECT_FALSE(report.success);
    EXPECT_EQ(report.stages[0].status, BootStatus::kBadSignature);
    // Nothing loaded, nothing measured, counter untouched.
    EXPECT_TRUE(pcrs.log().empty());
    EXPECT_EQ(counters.value("fw_version"), 0u);
}

TEST_F(BootFixture, RollbackAttackRejectedWhenStrict) {
    (void)rom.boot_chain({make_image("fw", 5)}, memory, 0x0, pcrs);
    const BootReport report =
        rom.boot_chain({make_image("fw", 3)}, memory, 0x0, pcrs);
    EXPECT_FALSE(report.success);
    EXPECT_EQ(report.stages[0].status, BootStatus::kRollbackRejected);
}

TEST_F(BootFixture, RollbackAttackSucceedsWhenLax) {
    // The vulnerable configuration of [16]: valid signature, old version.
    (void)rom.boot_chain({make_image("fw", 5)}, memory, 0x0, pcrs);
    rom.set_strict_rollback(false);
    const BootReport report =
        rom.boot_chain({make_image("fw", 3)}, memory, 0x0, pcrs);
    EXPECT_TRUE(report.success);  // The downgrade goes through.
}

TEST_F(BootFixture, EqualVersionAllowed) {
    (void)rom.boot_chain({make_image("fw", 5)}, memory, 0x0, pcrs);
    const BootReport report =
        rom.boot_chain({make_image("fw", 5)}, memory, 0x0, pcrs);
    EXPECT_TRUE(report.success);
}

TEST_F(BootFixture, MultiStageChain) {
    const FirmwareImage bl = make_image("bootloader", 2, 0x1000);
    const FirmwareImage os = make_image("os", 7, 0x4000);
    const BootReport report = rom.boot_chain({bl, os}, memory, 0x0, pcrs);
    EXPECT_TRUE(report.success);
    EXPECT_EQ(report.entry_point, 0x4000u);
    EXPECT_EQ(report.stages.size(), 2u);
    EXPECT_EQ(pcrs.log().size(), 2u);
    EXPECT_EQ(counters.value("fw_version"), 7u);
}

TEST_F(BootFixture, ChainStopsAtFirstBadStage) {
    const FirmwareImage bl = make_image("bootloader", 2, 0x1000);
    FirmwareImage os = make_image("os", 7, 0x4000);
    os.payload[0] ^= 1;
    const BootReport report = rom.boot_chain({bl, os}, memory, 0x0, pcrs);
    EXPECT_FALSE(report.success);
    EXPECT_EQ(report.stages.size(), 2u);
    EXPECT_EQ(report.stages[1].status, BootStatus::kBadSignature);
    EXPECT_EQ(pcrs.log().size(), 1u);  // Only the bootloader measured.
}

TEST_F(BootFixture, LoadFaultOnOutOfRangeImage) {
    const FirmwareImage image = make_image("fw", 1, 0xfff0, 0x100);
    const BootReport report = rom.boot_chain({image}, memory, 0x0, pcrs);
    EXPECT_FALSE(report.success);
    EXPECT_EQ(report.stages[0].status, BootStatus::kLoadFault);
}

TEST_F(BootFixture, EmptyChainRejected) {
    EXPECT_THROW((void)rom.boot_chain({}, memory, 0x0, pcrs), BootError);
}

TEST_F(BootFixture, ReportSummaryReadable) {
    const BootReport report =
        rom.boot_chain({make_image("fw", 1)}, memory, 0x0, pcrs);
    const std::string s = report.summary();
    EXPECT_NE(s.find("BOOT OK"), std::string::npos);
    EXPECT_NE(s.find("fw v1"), std::string::npos);
}

TEST(Pcr, ExtendChangesValueDeterministically) {
    PcrBank a, b;
    crypto::Hash256 m;
    m.fill(7);
    a.extend(0, m);
    b.extend(0, m);
    EXPECT_EQ(a.value(0), b.value(0));
    EXPECT_NE(a.value(0), crypto::Hash256{});
    a.extend(0, m);
    EXPECT_NE(a.value(0), b.value(0));  // Order/count sensitive.
}

TEST(Pcr, CompositeCoversAllRegisters) {
    PcrBank a, b;
    crypto::Hash256 m;
    m.fill(3);
    a.extend(0, m);
    b.extend(1, m);
    EXPECT_NE(a.composite(), b.composite());
}

TEST(Pcr, ReplayMatchesLiveBank) {
    PcrBank bank;
    crypto::Hash256 m1, m2;
    m1.fill(1);
    m2.fill(2);
    bank.extend(PcrBank::kPcrFirmware, m1, "fw");
    bank.extend(PcrBank::kPcrApplication, m2, "app");
    EXPECT_EQ(replay_composite(bank.log()), bank.composite());
}

TEST(Pcr, BadIndexThrows) {
    PcrBank bank;
    crypto::Hash256 m{};
    EXPECT_THROW(bank.extend(PcrBank::kPcrCount, m), Error);
    EXPECT_THROW((void)bank.value(PcrBank::kPcrCount), Error);
}

TEST(Pcr, ResetRestoresPowerOnState) {
    PcrBank bank;
    crypto::Hash256 m;
    m.fill(5);
    bank.extend(0, m);
    bank.reset();
    EXPECT_EQ(bank.value(0), crypto::Hash256{});
    EXPECT_TRUE(bank.log().empty());
}

class UpdateFixture : public ::testing::Test {
protected:
    UpdateFixture()
        : vendor_key(seed(2), 5),
          agent(vendor_key.public_key(), counters) {}

    Bytes signed_image(std::uint32_t version) {
        FirmwareImage image;
        image.name = "fw";
        image.security_version = version;
        image.load_addr = 0x1000;
        image.entry_point = 0x1000;
        image.payload = Bytes(64, static_cast<std::uint8_t>(version));
        ImageSigner signer(vendor_key);
        signer.sign(image);
        return image.serialize();
    }

    crypto::MerkleSigner vendor_key;
    crypto::MonotonicCounterBank counters;
    UpdateAgent agent;
};

TEST_F(UpdateFixture, InstallActivateCommit) {
    EXPECT_EQ(agent.install(signed_image(1)), UpdateStatus::kOk);
    EXPECT_TRUE(agent.activate());
    EXPECT_TRUE(agent.provisional());
    agent.commit();
    EXPECT_FALSE(agent.provisional());
    ASSERT_TRUE(agent.active_image().has_value());
    EXPECT_EQ(agent.active_image()->security_version, 1u);
    EXPECT_EQ(counters.value("fw_version"), 1u);
}

TEST_F(UpdateFixture, ActivateWithoutInstallFails) {
    EXPECT_FALSE(agent.activate());
}

TEST_F(UpdateFixture, BadSignatureRejected) {
    Bytes bytes = signed_image(1);
    bytes[bytes.size() / 2] ^= 1;
    const auto status = agent.install(bytes);
    EXPECT_TRUE(status == UpdateStatus::kBadSignature ||
                status == UpdateStatus::kBadImage);
    EXPECT_EQ(agent.rejected_installs(), 1u);
}

TEST_F(UpdateFixture, GarbageRejected) {
    EXPECT_EQ(agent.install(Bytes{1, 2, 3}), UpdateStatus::kBadImage);
}

TEST_F(UpdateFixture, DowngradeRejectedAfterCommit) {
    (void)agent.install(signed_image(5));
    (void)agent.activate();
    agent.commit();
    EXPECT_EQ(agent.install(signed_image(3)),
              UpdateStatus::kVersionRegression);
}

TEST_F(UpdateFixture, FailedBootRollsBack) {
    (void)agent.install(signed_image(1));
    (void)agent.activate();
    agent.commit();

    (void)agent.install(signed_image(2));
    (void)agent.activate();
    EXPECT_EQ(agent.active_image()->security_version, 2u);
    EXPECT_TRUE(agent.reboot_failed());  // v2 crashes -> back to v1.
    EXPECT_EQ(agent.active_image()->security_version, 1u);
    EXPECT_EQ(agent.rollbacks(), 1u);
}

TEST_F(UpdateFixture, RollbackImpossibleWhenCommitted) {
    (void)agent.install(signed_image(1));
    (void)agent.activate();
    agent.commit();
    EXPECT_FALSE(agent.reboot_failed());
}

TEST_F(UpdateFixture, RollForwardAfterRollback) {
    (void)agent.install(signed_image(1));
    (void)agent.activate();
    agent.commit();
    (void)agent.install(signed_image(2));
    (void)agent.activate();
    (void)agent.reboot_failed();
    // Vendor ships a fixed v3; device rolls forward.
    EXPECT_EQ(agent.install(signed_image(3)), UpdateStatus::kOk);
    EXPECT_TRUE(agent.activate());
    agent.commit();
    EXPECT_EQ(agent.active_image()->security_version, 3u);
    EXPECT_EQ(counters.value("fw_version"), 3u);
}

}  // namespace
}  // namespace cres::boot
