// Privilege-separation integration: a machine-mode kernel drops to a
// user-mode task under MPU enforcement; the task's attempts to touch
// kernel memory or execute kernel code trap cleanly and the kernel
// resumes it. Exercises the full privilege + MPU + trap path that the
// TEE baseline and monitors rely on.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/cpu.h"
#include "mem/ram.h"

namespace cres::isa {
namespace {

constexpr mem::Addr kRamBase = 0;
constexpr mem::Addr kRamSize = 0x20000;

class PrivilegeFixture : public ::testing::Test {
protected:
    PrivilegeFixture() : ram("ram", kRamSize), cpu("cpu0", bus) {
        bus.map(mem::RegionConfig{"ram", kRamBase, kRamSize, false, false},
                ram);
    }

    mem::Bus bus;
    mem::Ram ram;
    Cpu cpu;
};

// Kernel: installs a trap handler that skips the faulting instruction
// and counts faults in r12, then drops to user mode.
constexpr const char* kProgram = R"(
kstart:
    li   sp, 0x1f000
    la   r1, ktrap
    csrw mtvec, r1
    la   r1, user_entry
    csrw mepc, r1
    addi r2, r0, 0          ; mstatus: MPP=0 (user), MIE=0
    csrw mstatus, r2
    mret                    ; enter user mode
ktrap:
    addi r12, r12, 1        ; fault counter
    csrr r10, mcause
    addi r9, r0, 4          ; TrapCause::kEcall
    beq  r10, r9, kret      ; ecall: mepc already points past it
    csrr r11, mepc          ; fault: skip the faulting instruction
    addi r11, r11, 4
    csrw mepc, r11
kret:
    mret
kernel_secret:
    .word 0x5ec2e7
    .space 236
user_entry:
    ; 1) try to read kernel data (MPU: privileged-only) -> fault
    la   r1, kernel_secret
    lw   r2, r1, 0
    ; 2) legitimate user data access -> fine
    la   r3, user_data
    li   r4, 77
    sw   r4, r3, 0
    lw   r5, r3, 0
    ; 3) try to write kernel data -> fault
    la   r6, kernel_secret
    sw   r4, r6, 0
    ; 4) request a kernel service -> ecall traps, kernel resumes us
    ecall 9
    halt
    .space 200              ; pad so user_data sits in the RW region
user_data:
    .word 0
)";

TEST_F(PrivilegeFixture, UserTaskSandboxedByMpu) {
    const Program p = assemble(kProgram, kRamBase);
    ram.load(0, p.code);

    const mem::Addr user_base = p.symbol("user_entry");
    const mem::Addr kdata_base = p.symbol("kernel_secret");
    // Kernel text RX / kernel data RW: privileged-only (W^X holds).
    cpu.mpu().add_region(mem::MpuRegion{
        "kernel-text", 0, kdata_base, true, false, true, /*user=*/false});
    cpu.mpu().add_region(mem::MpuRegion{
        "kernel-data", kdata_base, user_base - kdata_base, true, true,
        false, /*user=*/false});
    cpu.mpu().add_region(mem::MpuRegion{
        "user-text", user_base, 0x100, true, false, true, /*user=*/true});
    cpu.mpu().add_region(mem::MpuRegion{
        "user-data", user_base + 0x100, 0x1000, true, true, false,
        /*user=*/true});
    cpu.mpu().set_enabled(true);
    cpu.mpu().lock();

    cpu.reset(p.symbol("kstart"));
    int steps = 0;
    while (!cpu.halted() && steps++ < 10000) cpu.step();
    ASSERT_TRUE(cpu.halted());

    // Three traps: kernel-read fault, kernel-write fault, ecall.
    EXPECT_EQ(cpu.reg(12), 3u);
    // The legitimate user access worked.
    EXPECT_EQ(cpu.reg(5), 77u);
    // The kernel secret was neither read (r2 unchanged) nor modified.
    EXPECT_EQ(cpu.reg(2), 0u);
    const mem::Addr secret_off = p.symbol("kernel_secret");
    EXPECT_EQ(ram.dump(secret_off, 3), (Bytes{0xe7, 0xc2, 0x5e}));
    EXPECT_GE(cpu.mpu().fault_count(), 2u);
}

TEST_F(PrivilegeFixture, UserCannotExecuteKernelCode) {
    const Program p = assemble(R"(
kstart:
    li   sp, 0x1f000
    la   r1, ktrap
    csrw mtvec, r1
    la   r1, user_entry
    csrw mepc, r1
    addi r2, r0, 0
    csrw mstatus, r2
    mret
ktrap:
    addi r12, r12, 1
    halt                    ; stop at the first fault
kfunc:
    addi r9, r0, 1
    ret
user_entry:
    la   r1, kfunc          ; jump into kernel text from user mode
    jalr lr, r1, 0
    halt
)",
                               kRamBase);
    ram.load(0, p.code);

    const mem::Addr user_base = p.symbol("user_entry");
    cpu.mpu().add_region(mem::MpuRegion{"kernel", 0, user_base, true, false,
                                        true, /*user=*/false});
    cpu.mpu().add_region(mem::MpuRegion{"user-text", user_base, 0x100, true,
                                        false, true, /*user=*/true});
    cpu.mpu().set_enabled(true);

    cpu.reset(p.symbol("kstart"));
    int steps = 0;
    while (!cpu.halted() && steps++ < 1000) cpu.step();
    ASSERT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.reg(12), 1u);  // Fetch fault, kernel stopped it.
    EXPECT_EQ(cpu.reg(9), 0u);   // kfunc never ran.
}

TEST_F(PrivilegeFixture, MachineModeUnaffectedByUserRegions) {
    const Program p = assemble(R"(
    li  r1, 0x14000
    li  r2, 42
    sw  r2, r1, 0      ; machine mode writes user data freely
    lw  r3, r1, 0
    halt
)",
                               kRamBase);
    ram.load(0, p.code);
    cpu.mpu().add_region(mem::MpuRegion{"text", 0, 0x100, true, false, true,
                                        /*user=*/false});
    cpu.mpu().add_region(mem::MpuRegion{"data", 0x100, kRamSize - 0x100,
                                        true, true, false, /*user=*/false});
    cpu.mpu().set_enabled(true);
    cpu.reset(0);
    int steps = 0;
    while (!cpu.halted() && steps++ < 100) cpu.step();
    EXPECT_EQ(cpu.reg(3), 42u);
    EXPECT_EQ(cpu.trap_count(), 0u);
}

}  // namespace
}  // namespace cres::isa
