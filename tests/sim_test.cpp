// Simulation-kernel tests: event ordering, tickables, trace streams.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/error.h"

namespace cres::sim {
namespace {

class Counter : public Tickable {
public:
    void tick(Cycle) override { ++ticks; }
    int ticks = 0;
};

TEST(Simulator, StartsAtCycleZero) {
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
}

TEST(Simulator, RunForAdvancesClock) {
    Simulator sim;
    sim.run_for(10);
    EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, TickablesTickedEveryCycle) {
    Simulator sim;
    Counter c;
    sim.add_tickable(&c);
    sim.run_for(5);
    EXPECT_EQ(c.ticks, 5);
}

TEST(Simulator, RemoveTickableStopsTicks) {
    Simulator sim;
    Counter c;
    sim.add_tickable(&c);
    sim.run_for(3);
    sim.remove_tickable(&c);
    sim.run_for(3);
    EXPECT_EQ(c.ticks, 3);
}

TEST(Simulator, NullTickableRejected) {
    Simulator sim;
    EXPECT_THROW(sim.add_tickable(nullptr), SimError);
}

TEST(Simulator, EventFiresAtScheduledCycle) {
    Simulator sim;
    Cycle fired_at = 0;
    sim.schedule_at(7, "e", [&] { fired_at = sim.now(); });
    sim.run_for(10);
    EXPECT_EQ(fired_at, 7u);
}

TEST(Simulator, ScheduleInIsRelative) {
    Simulator sim;
    sim.run_for(5);
    Cycle fired_at = 0;
    sim.schedule_in(3, "e", [&] { fired_at = sim.now(); });
    sim.run_for(10);
    EXPECT_EQ(fired_at, 8u);
}

TEST(Simulator, SameCycleEventsRunInOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(2, "a", [&] { order.push_back(1); });
    sim.schedule_at(2, "b", [&] { order.push_back(2); });
    sim.schedule_at(1, "c", [&] { order.push_back(0); });
    sim.run_for(5);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, PastSchedulingRejected) {
    Simulator sim;
    sim.run_for(10);
    EXPECT_THROW(sim.schedule_at(5, "late", [] {}), SimError);
}

TEST(Simulator, EventMayScheduleMoreEvents) {
    Simulator sim;
    int fired = 0;
    sim.schedule_at(1, "outer", [&] {
        ++fired;
        sim.schedule_in(2, "inner", [&] { ++fired; });
    });
    sim.run_for(10);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.events_fired(), 2u);
}

TEST(Simulator, RunUntilStopsAtTarget) {
    Simulator sim;
    sim.run_until(42);
    EXPECT_EQ(sim.now(), 42u);
    sim.run_until(10);  // No-op when already past.
    EXPECT_EQ(sim.now(), 42u);
}

TEST(Simulator, IdleReflectsQueue) {
    Simulator sim;
    EXPECT_TRUE(sim.idle());
    sim.schedule_at(100, "later", [] {});
    EXPECT_FALSE(sim.idle());
    sim.run_for(101);
    EXPECT_TRUE(sim.idle());
}

// Ticks every `period` cycles and implements the quiescence protocol;
// skip() reproduces the state of the elided (non-firing) ticks.
class Periodic : public Tickable {
public:
    explicit Periodic(Cycle period) : period_(period) {}

    void tick(Cycle now) override {
        ++ticks;
        last = now;
        if (now % period_ == 0) ++fires;
    }
    Cycle next_activity(Cycle now) override {
        if (now % period_ == 0) return now;
        return now + (period_ - now % period_);
    }
    void skip(Cycle now, Cycle cycles) override {
        ticks += static_cast<int>(cycles);
        last = now + cycles - 1;
    }

    Cycle period_;
    int ticks = 0;
    int fires = 0;
    Cycle last = 0;
};

TEST(Quiescence, FastForwardMatchesPerCycleExecution) {
    Simulator fast;
    Simulator slow;
    slow.set_quiescence(false);
    Periodic fast_p(97);
    Periodic slow_p(97);
    fast.add_tickable(&fast_p);
    slow.add_tickable(&slow_p);

    fast.run_for(1000);
    slow.run_for(1000);

    EXPECT_EQ(fast.now(), slow.now());
    EXPECT_EQ(fast_p.ticks, slow_p.ticks);
    EXPECT_EQ(fast_p.fires, slow_p.fires);
    EXPECT_EQ(fast_p.last, slow_p.last);
    EXPECT_GT(fast.cycles_skipped(), 0u);
    EXPECT_EQ(slow.cycles_skipped(), 0u);
}

TEST(Quiescence, EventsFireAtExactCyclesAcrossSkips) {
    Simulator sim;
    Periodic p(1000);  // Idle almost always: events bound the jumps.
    sim.add_tickable(&p);
    std::vector<Cycle> fired;
    sim.schedule_at(37, "a", [&] { fired.push_back(sim.now()); });
    sim.schedule_at(612, "b", [&] { fired.push_back(sim.now()); });
    sim.schedule_at(613, "c", [&] { fired.push_back(sim.now()); });
    sim.run_for(700);
    EXPECT_EQ(fired, (std::vector<Cycle>{37, 612, 613}));
    EXPECT_EQ(sim.now(), 700u);
    EXPECT_GT(sim.cycles_skipped(), 0u);
}

TEST(Quiescence, DefaultTickableIsAlwaysActive) {
    // Tickables that don't implement the protocol keep per-cycle
    // semantics, pinning the whole simulator to per-cycle stepping.
    Simulator sim;
    Counter c;
    sim.add_tickable(&c);
    sim.run_for(50);
    EXPECT_EQ(c.ticks, 50);
    EXPECT_EQ(sim.cycles_skipped(), 0u);
}

TEST(Quiescence, IdleForeverTickableJumpsToTarget) {
    class Dormant : public Tickable {
    public:
        void tick(Cycle) override { ++ticks; }
        Cycle next_activity(Cycle) override { return kIdleForever; }
        void skip(Cycle, Cycle) override {}
        int ticks = 0;
    };
    Simulator sim;
    Dormant d;
    sim.add_tickable(&d);
    sim.run_for(10000);
    EXPECT_EQ(sim.now(), 10000u);
    EXPECT_EQ(d.ticks, 0);
    EXPECT_EQ(sim.cycles_skipped(), 10000u);
}

TEST(Quiescence, DisabledKnobForcesPerCycle) {
    Simulator sim;
    sim.set_quiescence(false);
    EXPECT_FALSE(sim.quiescence());
    Periodic p(100);
    sim.add_tickable(&p);
    sim.run_for(500);
    EXPECT_EQ(p.ticks, 500);
    EXPECT_EQ(sim.cycles_skipped(), 0u);
}

// Removes itself — and optionally a victim — from inside tick().
class RemoveDuringTick : public Tickable {
public:
    RemoveDuringTick(Simulator& sim, Tickable* victim)
        : sim_(sim), victim_(victim) {}
    void tick(Cycle) override {
        ++ticks;
        sim_.remove_tickable(this);
        if (victim_ != nullptr) sim_.remove_tickable(victim_);
    }
    int ticks = 0;

private:
    Simulator& sim_;
    Tickable* victim_;
};

TEST(Simulator, RemoveSelfDuringTickIsSafe) {
    Simulator sim;
    Counter before;
    RemoveDuringTick remover(sim, nullptr);
    Counter after;
    sim.add_tickable(&before);
    sim.add_tickable(&remover);
    sim.add_tickable(&after);
    sim.run_for(3);
    EXPECT_EQ(remover.ticks, 1);
    EXPECT_EQ(before.ticks, 3);
    EXPECT_EQ(after.ticks, 3);
}

TEST(Simulator, RemoveLaterComponentDuringTickSkipsItThatCycle) {
    Simulator sim;
    Counter victim;
    RemoveDuringTick remover(sim, &victim);
    sim.add_tickable(&remover);
    sim.add_tickable(&victim);  // Registered after the remover.
    sim.run_for(5);
    // Removal takes effect immediately: the victim never ticks.
    EXPECT_EQ(remover.ticks, 1);
    EXPECT_EQ(victim.ticks, 0);
}

TEST(Simulator, AddDuringTickStartsNextCycle) {
    class Adder : public Tickable {
    public:
        Adder(Simulator& sim, Tickable* child) : sim_(sim), child_(child) {}
        void tick(Cycle) override {
            if (!added_) {
                added_ = true;
                sim_.add_tickable(child_);
            }
        }

    private:
        Simulator& sim_;
        Tickable* child_;
        bool added_ = false;
    };
    Simulator sim;
    Counter child;
    Adder adder(sim, &child);
    sim.add_tickable(&adder);
    sim.run_for(4);
    EXPECT_EQ(child.ticks, 3);  // Missed the cycle it was added on.
}

TEST(Simulator, RemoveMiddleTickableKeepsOthersTicking) {
    Simulator sim;
    Counter a;
    Counter b;
    Counter c;
    sim.add_tickable(&a);
    sim.add_tickable(&b);
    sim.add_tickable(&c);
    sim.run_for(2);
    sim.remove_tickable(&b);
    sim.run_for(2);
    EXPECT_EQ(a.ticks, 4);
    EXPECT_EQ(b.ticks, 2);
    EXPECT_EQ(c.ticks, 4);
}

TEST(Simulator, LargeCaptureEventFires) {
    // Callables past the inline small-buffer bound take the boxed path.
    Simulator sim;
    std::array<std::uint64_t, 16> payload{};
    for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i * 3;
    std::uint64_t sum = 0;
    sim.schedule_at(5, "big", [payload, &sum] {
        for (const auto v : payload) sum += v;
    });
    sim.run_for(10);
    EXPECT_EQ(sum, 360u);
}

TEST(Simulator, PastScheduleErrorNamesTheLabel) {
    Simulator sim;
    sim.run_for(10);
    try {
        sim.schedule_at(5, "late-label", [] {});
        FAIL() << "expected SimError";
    } catch (const SimError& e) {
        EXPECT_NE(std::string(e.what()).find("late-label"),
                  std::string::npos);
    }
}

TEST(Trace, EmitAndQuery) {
    TraceStream trace;
    trace.emit(1, "cpu", "trap", "bus-fault", 0x100, 0);
    trace.emit(2, "bus0", "write", "", 0x200, 42);
    trace.emit(3, "cpu", "trap", "mpu-fault", 0x104, 0);

    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.count_kind("trap"), 2u);
    EXPECT_EQ(trace.of_kind("write").size(), 1u);
    EXPECT_EQ(trace.since(2).size(), 2u);
}

TEST(Trace, ClearModelsVolatileLoss) {
    TraceStream trace;
    trace.emit(1, "cpu", "x");
    trace.clear();
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.count_kind("x"), 0u);  // Index dies with the records.
}

TEST(Trace, KindCountIndexMatchesLinearScan) {
    TraceStream trace;
    for (std::uint64_t i = 0; i < 500; ++i) {
        trace.emit(i, "cpu", i % 3 == 0 ? "trap" : "op");
    }
    std::size_t traps = 0;
    for (const auto& r : trace.records()) {
        if (r.kind == "trap") ++traps;
    }
    EXPECT_EQ(trace.count_kind("trap"), traps);
    EXPECT_EQ(trace.count_kind("op"), 500u - traps);
    EXPECT_EQ(trace.count_kind("never"), 0u);
    EXPECT_EQ(trace.kind_counts().size(), 2u);
}

TEST(Trace, NonCopyingVisitorsSeeTheSameRecords) {
    TraceStream trace;
    trace.emit(1, "cpu", "trap", "bus-fault", 0x100, 0);
    trace.emit(2, "bus0", "write", "", 0x200, 42);
    trace.emit(3, "cpu", "trap", "mpu-fault", 0x104, 0);

    std::vector<Cycle> trap_ats;
    trace.for_each_of_kind("trap", [&](const TraceRecord& r) {
        trap_ats.push_back(r.at);
    });
    EXPECT_EQ(trap_ats, (std::vector<Cycle>{1, 3}));

    std::size_t late = 0;
    trace.for_each_since(2, [&](const TraceRecord&) { ++late; });
    EXPECT_EQ(late, trace.since(2).size());
}

TEST(Trace, EncodeIsDeterministic) {
    TraceRecord r{5, "src", "kind", "detail", 1, 2};
    EXPECT_EQ(TraceStream::encode(r), TraceStream::encode(r));
    TraceRecord r2 = r;
    r2.a = 9;
    EXPECT_NE(TraceStream::encode(r), TraceStream::encode(r2));
}

}  // namespace
}  // namespace cres::sim
