// Simulation-kernel tests: event ordering, tickables, trace streams.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/trace.h"
#include "util/error.h"

namespace cres::sim {
namespace {

class Counter : public Tickable {
public:
    void tick(Cycle) override { ++ticks; }
    int ticks = 0;
};

TEST(Simulator, StartsAtCycleZero) {
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
}

TEST(Simulator, RunForAdvancesClock) {
    Simulator sim;
    sim.run_for(10);
    EXPECT_EQ(sim.now(), 10u);
}

TEST(Simulator, TickablesTickedEveryCycle) {
    Simulator sim;
    Counter c;
    sim.add_tickable(&c);
    sim.run_for(5);
    EXPECT_EQ(c.ticks, 5);
}

TEST(Simulator, RemoveTickableStopsTicks) {
    Simulator sim;
    Counter c;
    sim.add_tickable(&c);
    sim.run_for(3);
    sim.remove_tickable(&c);
    sim.run_for(3);
    EXPECT_EQ(c.ticks, 3);
}

TEST(Simulator, NullTickableRejected) {
    Simulator sim;
    EXPECT_THROW(sim.add_tickable(nullptr), SimError);
}

TEST(Simulator, EventFiresAtScheduledCycle) {
    Simulator sim;
    Cycle fired_at = 0;
    sim.schedule_at(7, "e", [&] { fired_at = sim.now(); });
    sim.run_for(10);
    EXPECT_EQ(fired_at, 7u);
}

TEST(Simulator, ScheduleInIsRelative) {
    Simulator sim;
    sim.run_for(5);
    Cycle fired_at = 0;
    sim.schedule_in(3, "e", [&] { fired_at = sim.now(); });
    sim.run_for(10);
    EXPECT_EQ(fired_at, 8u);
}

TEST(Simulator, SameCycleEventsRunInOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(2, "a", [&] { order.push_back(1); });
    sim.schedule_at(2, "b", [&] { order.push_back(2); });
    sim.schedule_at(1, "c", [&] { order.push_back(0); });
    sim.run_for(5);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Simulator, PastSchedulingRejected) {
    Simulator sim;
    sim.run_for(10);
    EXPECT_THROW(sim.schedule_at(5, "late", [] {}), SimError);
}

TEST(Simulator, EventMayScheduleMoreEvents) {
    Simulator sim;
    int fired = 0;
    sim.schedule_at(1, "outer", [&] {
        ++fired;
        sim.schedule_in(2, "inner", [&] { ++fired; });
    });
    sim.run_for(10);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.events_fired(), 2u);
}

TEST(Simulator, RunUntilStopsAtTarget) {
    Simulator sim;
    sim.run_until(42);
    EXPECT_EQ(sim.now(), 42u);
    sim.run_until(10);  // No-op when already past.
    EXPECT_EQ(sim.now(), 42u);
}

TEST(Simulator, IdleReflectsQueue) {
    Simulator sim;
    EXPECT_TRUE(sim.idle());
    sim.schedule_at(100, "later", [] {});
    EXPECT_FALSE(sim.idle());
    sim.run_for(101);
    EXPECT_TRUE(sim.idle());
}

TEST(Trace, EmitAndQuery) {
    TraceStream trace;
    trace.emit(1, "cpu", "trap", "bus-fault", 0x100, 0);
    trace.emit(2, "bus0", "write", "", 0x200, 42);
    trace.emit(3, "cpu", "trap", "mpu-fault", 0x104, 0);

    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.count_kind("trap"), 2u);
    EXPECT_EQ(trace.of_kind("write").size(), 1u);
    EXPECT_EQ(trace.since(2).size(), 2u);
}

TEST(Trace, ClearModelsVolatileLoss) {
    TraceStream trace;
    trace.emit(1, "cpu", "x");
    trace.clear();
    EXPECT_TRUE(trace.empty());
    EXPECT_EQ(trace.count_kind("x"), 0u);  // Index dies with the records.
}

TEST(Trace, KindCountIndexMatchesLinearScan) {
    TraceStream trace;
    for (std::uint64_t i = 0; i < 500; ++i) {
        trace.emit(i, "cpu", i % 3 == 0 ? "trap" : "op");
    }
    std::size_t traps = 0;
    for (const auto& r : trace.records()) {
        if (r.kind == "trap") ++traps;
    }
    EXPECT_EQ(trace.count_kind("trap"), traps);
    EXPECT_EQ(trace.count_kind("op"), 500u - traps);
    EXPECT_EQ(trace.count_kind("never"), 0u);
    EXPECT_EQ(trace.kind_counts().size(), 2u);
}

TEST(Trace, NonCopyingVisitorsSeeTheSameRecords) {
    TraceStream trace;
    trace.emit(1, "cpu", "trap", "bus-fault", 0x100, 0);
    trace.emit(2, "bus0", "write", "", 0x200, 42);
    trace.emit(3, "cpu", "trap", "mpu-fault", 0x104, 0);

    std::vector<Cycle> trap_ats;
    trace.for_each_of_kind("trap", [&](const TraceRecord& r) {
        trap_ats.push_back(r.at);
    });
    EXPECT_EQ(trap_ats, (std::vector<Cycle>{1, 3}));

    std::size_t late = 0;
    trace.for_each_since(2, [&](const TraceRecord&) { ++late; });
    EXPECT_EQ(late, trace.since(2).size());
}

TEST(Trace, EncodeIsDeterministic) {
    TraceRecord r{5, "src", "kind", "detail", 1, 2};
    EXPECT_EQ(TraceStream::encode(r), TraceStream::encode(r));
    TraceRecord r2 = r;
    r2.a = 9;
    EXPECT_NE(TraceStream::encode(r), TraceStream::encode(r2));
}

}  // namespace
}  // namespace cres::sim
