// Evidence-log hot-path guarantees: steady-state append() performs no
// heap allocation, the incremental verify_chain() watermark agrees with
// the forensic full re-verification under append/tamper/wipe, and
// verify_seal() checks exactly the sealed prefix.
//
// This binary overrides global operator new/delete to count
// allocations, so it is deliberately separate from the other test
// executables.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/ssm/evidence.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1)) return p;
    throw std::bad_alloc();
}

// GCC pairs the inlined std::free here with the *library* operator
// new at some call sites and warns; the replacement new above also
// allocates with malloc, so the pairing is in fact correct.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace cres::core {
namespace {

constexpr std::size_t kBatch = 256;

EvidenceLog make_log() { return EvidenceLog(to_bytes("seal-key-material")); }

TEST(EvidencePerf, SteadyStateAppendIsAllocationFree) {
    EvidenceLog log = make_log();
    log.reserve(kBatch + 16);

    // Inputs built ahead of time; append() takes them by move. Payloads
    // stay within the 256-byte class the guarantee covers.
    std::vector<std::string> kinds(kBatch);
    std::vector<std::string> details(kBatch);
    std::vector<Bytes> payloads(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
        kinds[i] = "event";
        details[i] = "bus-monitor alert at 0x40005000 (master=dma)";
        payloads[i] = Bytes(256, static_cast<std::uint8_t>(i));
    }

    // A few warm-up appends settle the scratch writer.
    for (std::uint64_t i = 0; i < 8; ++i) {
        log.append(i, "event", "warm-up record");
    }

    const std::size_t before = g_allocations.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBatch; ++i) {
        log.append(1000 + i, std::move(kinds[i]), std::move(details[i]),
                   std::move(payloads[i]));
    }
    const std::size_t after = g_allocations.load(std::memory_order_relaxed);

    EXPECT_EQ(after, before)
        << (after - before) << " allocations across " << kBatch
        << " steady-state appends";
    EXPECT_EQ(log.size(), kBatch + 8);
    EXPECT_TRUE(log.verify_chain_full());
}

TEST(EvidencePerf, AppendGrowsWithoutExplicitReserve) {
    // Without reserve() the log still amortises: far fewer than one
    // reallocation per append once the geometric growth kicks in.
    EvidenceLog log = make_log();
    for (std::uint64_t i = 0; i < 4; ++i) log.append(i, "event", "warm");

    const std::size_t before = g_allocations.load(std::memory_order_relaxed);
    for (std::uint64_t i = 0; i < 4096; ++i) {
        log.append(i, "event", "detail");
    }
    const std::size_t after = g_allocations.load(std::memory_order_relaxed);
    // Geometric growth from capacity 64: a handful of grows (each a
    // buffer alloc plus moved record internals) — not one per append.
    EXPECT_LT(after - before, 64u);
    EXPECT_TRUE(log.verify_chain_full());
}

TEST(EvidenceChain, IncrementalMatchesFullOnCleanLog) {
    EvidenceLog log = make_log();
    for (std::uint64_t i = 0; i < 100; ++i) {
        log.append(i, "event", "clean record");
        EXPECT_TRUE(log.verify_chain());
        EXPECT_EQ(log.verified_watermark(), log.size());
        EXPECT_TRUE(log.verify_chain_full());
    }
}

TEST(EvidenceChain, TamperRewindsWatermarkAndBothPathsAgree) {
    EvidenceLog log = make_log();
    for (std::uint64_t i = 0; i < 50; ++i) log.append(i, "event", "r");
    ASSERT_TRUE(log.verify_chain());
    ASSERT_EQ(log.verified_watermark(), 50u);

    log.tamper_detail(10, "scrubbed by malware");
    // The watermark must not shield the tampered record.
    EXPECT_LE(log.verified_watermark(), 10u);
    EXPECT_FALSE(log.verify_chain());
    EXPECT_FALSE(log.verify_chain_full());

    // Failure must not advance the watermark past the damage.
    EXPECT_LE(log.verified_watermark(), 10u);
    EXPECT_FALSE(log.verify_chain());
}

TEST(EvidenceChain, WipeResetsWatermark) {
    EvidenceLog log = make_log();
    for (std::uint64_t i = 0; i < 20; ++i) log.append(i, "event", "r");
    ASSERT_TRUE(log.verify_chain());
    log.wipe();
    EXPECT_EQ(log.verified_watermark(), 0u);
    EXPECT_TRUE(log.verify_chain());
    EXPECT_TRUE(log.verify_chain_full());
    // The chain restarts from genesis after a wipe.
    log.append(0, "boot", "post-wipe record");
    EXPECT_TRUE(log.verify_chain());
    EXPECT_TRUE(log.verify_chain_full());
}

TEST(EvidenceChain, IncrementalCatchesTamperPastOldWatermark) {
    EvidenceLog log = make_log();
    for (std::uint64_t i = 0; i < 30; ++i) log.append(i, "event", "r");
    ASSERT_TRUE(log.verify_chain());
    for (std::uint64_t i = 30; i < 40; ++i) log.append(i, "event", "r");
    // Tamper inside the not-yet-rechecked tail.
    log.tamper_detail(35, "edited");
    EXPECT_FALSE(log.verify_chain());
    EXPECT_FALSE(log.verify_chain_full());
}

TEST(EvidenceSealPrefix, PostSealAppendsDoNotFailVerification) {
    const Bytes key = to_bytes("seal-key-material");
    EvidenceLog log(key);
    for (std::uint64_t i = 0; i < 10; ++i) log.append(i, "event", "sealed");
    const EvidenceSeal seal = log.seal();

    // Records appended after sealing — including ones an attacker
    // fabricates — must not invalidate the sealed prefix.
    for (std::uint64_t i = 10; i < 20; ++i) {
        log.append(i, "event", "post-seal garbage");
    }
    log.tamper_detail(15, "attacker-controlled tail");
    EXPECT_TRUE(EvidenceLog::verify_seal(log, seal, key));

    // Tampering *inside* the prefix still fails it.
    log.tamper_detail(3, "scrubbed");
    EXPECT_FALSE(EvidenceLog::verify_seal(log, seal, key));
}

TEST(EvidenceSealPrefix, TruncatedBelowSealCountFails) {
    const Bytes key = to_bytes("seal-key-material");
    EvidenceLog log(key);
    for (std::uint64_t i = 0; i < 10; ++i) log.append(i, "event", "r");
    const EvidenceSeal seal = log.seal();

    EvidenceLog shorter(key);
    for (std::uint64_t i = 0; i < 9; ++i) shorter.append(i, "event", "r");
    EXPECT_FALSE(EvidenceLog::verify_seal(shorter, seal, key));
}

TEST(EvidenceSealPrefix, WrongKeyFails) {
    const Bytes key = to_bytes("seal-key-material");
    EvidenceLog log(key);
    log.append(1, "event", "r");
    const EvidenceSeal seal = log.seal();
    EXPECT_TRUE(EvidenceLog::verify_seal(log, seal, key));
    EXPECT_FALSE(EvidenceLog::verify_seal(log, seal, to_bytes("other-key")));
}

TEST(EvidenceChain, DeserializedLogVerifiesFull) {
    const Bytes key = to_bytes("seal-key-material");
    EvidenceLog log(key);
    for (std::uint64_t i = 0; i < 25; ++i) {
        log.append(i, "event", "exported", Bytes(16, 0x11));
    }
    const Bytes wire = log.serialize();
    EvidenceLog imported = EvidenceLog::deserialize(wire, key);
    EXPECT_EQ(imported.size(), 25u);
    // An imported log starts with an empty watermark: both the
    // incremental and forensic paths must re-hash and agree.
    EXPECT_EQ(imported.verified_watermark(), 0u);
    EXPECT_TRUE(imported.verify_chain_full());
    EXPECT_TRUE(imported.verify_chain());
    EXPECT_EQ(imported.verified_watermark(), 25u);
    EXPECT_EQ(imported.head(), log.head());
}

}  // namespace
}  // namespace cres::core
