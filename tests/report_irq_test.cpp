// Tests for the interrupt-driven workload and the incident-report
// generator.
#include <gtest/gtest.h>

#include "attack/attacks.h"
#include "core/ssm/report.h"
#include "platform/scenario.h"
#include "platform/workload.h"

namespace cres {
namespace {

TEST(IrqWorkload, TimerPacedControlLoopRuns) {
    platform::NodeConfig config;
    config.resilient = false;
    platform::Node node(config);
    const isa::Program p = platform::interrupt_control_loop_program(
        platform::ControlLoopOptions{}, 800);
    node.load_and_start(p);
    node.run(50000);

    // ~1 iteration per 800-cycle timer period.
    EXPECT_GT(node.stats().control_iterations, 40u);
    EXPECT_LT(node.stats().control_iterations, 80u);
    EXPECT_GT(node.actuator.command_count(), 40u);
    // The core actually sleeps between interrupts.
    EXPECT_GT(node.timer.matches(), 40u);
}

TEST(IrqWorkload, PeriodControlsRate) {
    auto iterations_at_period = [](std::uint32_t period) {
        platform::NodeConfig config;
        config.resilient = false;
        platform::Node node(config);
        node.load_and_start(platform::interrupt_control_loop_program(
            platform::ControlLoopOptions{}, period));
        node.run(40000);
        return node.stats().control_iterations;
    };
    const auto fast = iterations_at_period(400);
    const auto slow = iterations_at_period(1600);
    EXPECT_GT(fast, 3 * slow / 2);  // Roughly 4x, allow slack.
}

TEST(IrqWorkload, ResilientStackCoversIrqVariant) {
    platform::NodeConfig config;
    config.name = "irq-node";
    config.resilient = true;
    platform::Node node(config);
    const isa::Program p = platform::interrupt_control_loop_program();
    node.load_and_start(p);
    node.arm_resilience(p);
    node.run(30000);
    node.take_checkpoint();

    // No false positives from interrupt-driven control.
    EXPECT_EQ(node.ssm->dispatches().size(), 0u);
    EXPECT_GT(node.stats().control_iterations, 20u);

    // A hang is detected and recovered exactly as in the polled variant.
    node.cpu.halt();
    node.run(20000);
    EXPECT_GE(node.recovery->restores(), 1u);
    EXPECT_GT(node.ssm->dispatches().size(), 0u);
}

TEST(IncidentReport, CleanLogReportsNoIncident) {
    core::EvidenceLog log(to_bytes("k"));
    log.append(0, "state", "ssm online");
    const auto report = core::generate_incident_report(log, "dev0");
    EXPECT_TRUE(report.integrity_ok);
    EXPECT_EQ(report.first_alert, 0u);
    EXPECT_TRUE(report.indicators.empty());
    const std::string text = report.render();
    EXPECT_NE(text.find("VERIFIED"), std::string::npos);
    EXPECT_NE(text.find("none (no incident indicators)"), std::string::npos);
}

TEST(IncidentReport, BreachProducesActionableReport) {
    platform::ScenarioConfig config;
    config.node.name = "rpt";
    config.node.resilient = true;
    config.warmup = 15000;
    config.horizon = 80000;
    config.seed = 81;
    platform::Scenario scenario(config);
    attack::StackSmashAttack attack;
    (void)scenario.run(&attack, 20000);

    const auto report = core::generate_incident_report(
        scenario.node().ssm->evidence(), "rpt");
    EXPECT_TRUE(report.integrity_ok);
    EXPECT_GT(report.first_alert, 0u);
    EXPECT_FALSE(report.indicators.empty());
    EXPECT_FALSE(report.responses.empty());
    EXPECT_GT(report.actions, 0u);

    const std::string text = report.render();
    EXPECT_NE(text.find("INCIDENT REPORT: rpt"), std::string::npos);
    EXPECT_NE(text.find("attack indicators"), std::string::npos);
    EXPECT_NE(text.find("countermeasures executed"), std::string::npos);
}

TEST(IncidentReport, TamperedLogFlagsIntegrity) {
    core::EvidenceLog log(to_bytes("k"));
    log.append(1, "event", "monitor/x/critical y: breach");
    log.append(2, "action", "isolate: done");
    log.tamper_detail(0, "nothing happened");
    const auto report = core::generate_incident_report(log, "dev0");
    EXPECT_FALSE(report.integrity_ok);
    EXPECT_NE(report.render().find("NOT trustworthy"), std::string::npos);
}

}  // namespace
}  // namespace cres
