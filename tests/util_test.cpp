// Unit tests for the util library: bytes, hex, serialization, CRC, RNG.
#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/serial.h"

namespace cres {
namespace {

TEST(Bytes, HexRoundTrip) {
    const Bytes data = {0x00, 0x01, 0xab, 0xff};
    EXPECT_EQ(to_hex(data), "0001abff");
    EXPECT_EQ(from_hex("0001abff"), data);
    EXPECT_EQ(from_hex("0001ABFF"), data);
}

TEST(Bytes, HexEmpty) {
    EXPECT_EQ(to_hex({}), "");
    EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, FromHexRejectsOddLength) {
    EXPECT_THROW(from_hex("abc"), Error);
}

TEST(Bytes, FromHexRejectsNonHex) {
    EXPECT_THROW(from_hex("zz"), Error);
    EXPECT_THROW(from_hex("0g"), Error);
}

TEST(Bytes, StringRoundTrip) {
    EXPECT_EQ(to_string(to_bytes("hello")), "hello");
}

TEST(Bytes, Concat) {
    const Bytes a = {1, 2};
    const Bytes b = {3};
    const Bytes c = concat({a, b});
    EXPECT_EQ(c, (Bytes{1, 2, 3}));
}

TEST(Bytes, SecureWipeZeroes) {
    Bytes secret = {1, 2, 3, 4};
    secure_wipe(secret);
    EXPECT_EQ(secret, (Bytes{0, 0, 0, 0}));
}

TEST(Bytes, CtEqual) {
    const Bytes a = {1, 2, 3};
    const Bytes b = {1, 2, 3};
    const Bytes c = {1, 2, 4};
    const Bytes d = {1, 2};
    EXPECT_TRUE(ct_equal(a, b));
    EXPECT_FALSE(ct_equal(a, c));
    EXPECT_FALSE(ct_equal(a, d));
}

TEST(Crc32, KnownVector) {
    // CRC-32("123456789") = 0xCBF43926 (classic check value).
    EXPECT_EQ(crc32(to_bytes("123456789")), 0xcbf43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
    const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog");
    Crc32 inc;
    inc.update(BytesView(data).subspan(0, 10));
    inc.update(BytesView(data).subspan(10));
    EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, EmptyIsZero) {
    EXPECT_EQ(crc32({}), 0u);
}

TEST(Serial, PrimitivesRoundTrip) {
    BinaryWriter w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.str("hello");
    w.blob(Bytes{9, 8, 7});

    BinaryReader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.blob(), (Bytes{9, 8, 7}));
    EXPECT_TRUE(r.done());
}

TEST(Serial, LittleEndianLayout) {
    BinaryWriter w;
    w.u32(0x04030201);
    EXPECT_EQ(w.data(), (Bytes{0x01, 0x02, 0x03, 0x04}));
}

TEST(Serial, TruncatedInputThrows) {
    const Bytes short_buf = {0x01};
    BinaryReader r(short_buf);
    EXPECT_THROW(r.u32(), Error);
}

TEST(Serial, OversizedBlobLengthThrows) {
    BinaryWriter w;
    w.u32(1000);  // Claims 1000 bytes, provides none.
    BinaryReader r(w.data());
    EXPECT_THROW(r.blob(), Error);
}

TEST(Serial, TruncatedMultiByteReadConsumesNothing) {
    // A failed u16/u32/u64 must leave the cursor at the field start so
    // a caller that catches the error is not mid-field.
    const Bytes buf = {0x01, 0x02, 0x03};
    BinaryReader r(buf);
    EXPECT_THROW(r.u32(), Error);
    EXPECT_EQ(r.remaining(), 3u);
    EXPECT_THROW(r.u64(), Error);
    EXPECT_EQ(r.remaining(), 3u);
    EXPECT_EQ(r.u16(), 0x0201);  // Unaffected by the failed attempts.
    EXPECT_THROW(r.u16(), Error);
    EXPECT_EQ(r.remaining(), 1u);
    EXPECT_EQ(r.u8(), 0x03);
    EXPECT_TRUE(r.done());
}

TEST(Serial, EveryTruncationPointOfACompositeRecordThrows) {
    BinaryWriter w;
    w.u32(0xfeedface);
    w.str("name");
    w.u64(7);
    w.blob(Bytes{1, 2, 3, 4});
    const Bytes full = w.data();

    // Full record parses; every proper prefix throws instead of
    // reading out of bounds or looping.
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
        BinaryReader r(BytesView(full.data(), cut));
        EXPECT_THROW(
            {
                (void)r.u32();
                (void)r.str();
                (void)r.u64();
                (void)r.blob();
            },
            Error)
            << "prefix length " << cut;
    }
    BinaryReader ok(full);
    EXPECT_EQ(ok.u32(), 0xfeedfaceu);
    EXPECT_EQ(ok.str(), "name");
    EXPECT_EQ(ok.u64(), 7u);
    EXPECT_EQ(ok.blob(), (Bytes{1, 2, 3, 4}));
    EXPECT_TRUE(ok.done());
}

TEST(Serial, RawReadIsBoundsCheckedBeforeAllocation) {
    const Bytes buf = {0x01, 0x02};
    BinaryReader r(buf);
    // A huge claimed size must throw, not attempt a giant allocation.
    EXPECT_THROW((void)r.raw(static_cast<std::size_t>(-1)), Error);
    EXPECT_EQ(r.remaining(), 2u);
}

TEST(Rng, Deterministic) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i) {
        if (a.next() != b.next()) any_diff = true;
    }
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformWithinBound) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.uniform(10), 10u);
    }
    EXPECT_EQ(rng.uniform(0), 0u);
}

TEST(Rng, RangeInclusive) {
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, RealInUnitInterval) {
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes) {
    Rng rng(11);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
}

TEST(Rng, ChanceApproximatesProbability) {
    Rng rng(13);
    int hits = 0;
    const int trials = 10000;
    for (int i = 0; i < trials; ++i) {
        if (rng.chance(0.25)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.03);
}

TEST(Rng, FillCoversBuffer) {
    Rng rng(5);
    Bytes buf(100, 0);
    rng.fill(buf);
    int nonzero = 0;
    for (auto b : buf) {
        if (b != 0) ++nonzero;
    }
    EXPECT_GT(nonzero, 50);  // Overwhelmingly likely for random bytes.
}

TEST(Rng, ForkIndependent) {
    Rng parent(9);
    Rng child = parent.fork();
    EXPECT_NE(parent.next(), child.next());
}

TEST(Log, CapturedSinkReceivesMessages) {
    auto& logger = Logger::instance();
    const LogLevel old_level = logger.level();

    std::vector<std::string> captured;
    logger.set_level(LogLevel::kInfo);
    logger.set_sink([&captured](LogLevel, std::string_view msg) {
        captured.emplace_back(msg);
    });

    log_info("count=", 42);
    log_debug("should be filtered");

    logger.set_sink(nullptr);
    logger.set_level(old_level);

    ASSERT_EQ(captured.size(), 1u);
    EXPECT_EQ(captured[0], "count=42");
}

TEST(Log, LevelNames) {
    EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
    EXPECT_EQ(log_level_name(LogLevel::kTrace), "TRACE");
}

}  // namespace
}  // namespace cres
