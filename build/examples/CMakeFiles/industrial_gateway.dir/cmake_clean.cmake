file(REMOVE_RECURSE
  "CMakeFiles/industrial_gateway.dir/industrial_gateway.cpp.o"
  "CMakeFiles/industrial_gateway.dir/industrial_gateway.cpp.o.d"
  "industrial_gateway"
  "industrial_gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/industrial_gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
