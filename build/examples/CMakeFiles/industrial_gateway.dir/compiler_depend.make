# Empty compiler generated dependencies file for industrial_gateway.
# This may be replaced when dependencies are built.
