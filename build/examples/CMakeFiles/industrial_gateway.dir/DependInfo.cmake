
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/industrial_gateway.cpp" "examples/CMakeFiles/industrial_gateway.dir/industrial_gateway.cpp.o" "gcc" "examples/CMakeFiles/industrial_gateway.dir/industrial_gateway.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/cres_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/cres_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cres_core.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cres_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cres_net.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/cres_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cres_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cres_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/boot/CMakeFiles/cres_boot.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cres_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cres_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
