file(REMOVE_RECURSE
  "CMakeFiles/cres_boot.dir/image.cpp.o"
  "CMakeFiles/cres_boot.dir/image.cpp.o.d"
  "CMakeFiles/cres_boot.dir/measured.cpp.o"
  "CMakeFiles/cres_boot.dir/measured.cpp.o.d"
  "CMakeFiles/cres_boot.dir/secureboot.cpp.o"
  "CMakeFiles/cres_boot.dir/secureboot.cpp.o.d"
  "CMakeFiles/cres_boot.dir/update.cpp.o"
  "CMakeFiles/cres_boot.dir/update.cpp.o.d"
  "libcres_boot.a"
  "libcres_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cres_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
