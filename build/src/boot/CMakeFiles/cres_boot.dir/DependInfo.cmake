
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/boot/image.cpp" "src/boot/CMakeFiles/cres_boot.dir/image.cpp.o" "gcc" "src/boot/CMakeFiles/cres_boot.dir/image.cpp.o.d"
  "/root/repo/src/boot/measured.cpp" "src/boot/CMakeFiles/cres_boot.dir/measured.cpp.o" "gcc" "src/boot/CMakeFiles/cres_boot.dir/measured.cpp.o.d"
  "/root/repo/src/boot/secureboot.cpp" "src/boot/CMakeFiles/cres_boot.dir/secureboot.cpp.o" "gcc" "src/boot/CMakeFiles/cres_boot.dir/secureboot.cpp.o.d"
  "/root/repo/src/boot/update.cpp" "src/boot/CMakeFiles/cres_boot.dir/update.cpp.o" "gcc" "src/boot/CMakeFiles/cres_boot.dir/update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cres_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cres_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cres_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
