# Empty compiler generated dependencies file for cres_boot.
# This may be replaced when dependencies are built.
