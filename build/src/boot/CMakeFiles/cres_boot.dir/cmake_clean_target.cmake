file(REMOVE_RECURSE
  "libcres_boot.a"
)
