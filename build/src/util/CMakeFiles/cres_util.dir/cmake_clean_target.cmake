file(REMOVE_RECURSE
  "libcres_util.a"
)
