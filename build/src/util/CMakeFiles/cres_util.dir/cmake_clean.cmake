file(REMOVE_RECURSE
  "CMakeFiles/cres_util.dir/bytes.cpp.o"
  "CMakeFiles/cres_util.dir/bytes.cpp.o.d"
  "CMakeFiles/cres_util.dir/crc32.cpp.o"
  "CMakeFiles/cres_util.dir/crc32.cpp.o.d"
  "CMakeFiles/cres_util.dir/log.cpp.o"
  "CMakeFiles/cres_util.dir/log.cpp.o.d"
  "CMakeFiles/cres_util.dir/rng.cpp.o"
  "CMakeFiles/cres_util.dir/rng.cpp.o.d"
  "CMakeFiles/cres_util.dir/serial.cpp.o"
  "CMakeFiles/cres_util.dir/serial.cpp.o.d"
  "libcres_util.a"
  "libcres_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cres_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
