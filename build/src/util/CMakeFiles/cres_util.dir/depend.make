# Empty dependencies file for cres_util.
# This may be replaced when dependencies are built.
