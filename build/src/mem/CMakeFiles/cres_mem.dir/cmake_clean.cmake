file(REMOVE_RECURSE
  "CMakeFiles/cres_mem.dir/bus.cpp.o"
  "CMakeFiles/cres_mem.dir/bus.cpp.o.d"
  "CMakeFiles/cres_mem.dir/cache.cpp.o"
  "CMakeFiles/cres_mem.dir/cache.cpp.o.d"
  "CMakeFiles/cres_mem.dir/mpu.cpp.o"
  "CMakeFiles/cres_mem.dir/mpu.cpp.o.d"
  "CMakeFiles/cres_mem.dir/ram.cpp.o"
  "CMakeFiles/cres_mem.dir/ram.cpp.o.d"
  "libcres_mem.a"
  "libcres_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cres_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
