# Empty compiler generated dependencies file for cres_mem.
# This may be replaced when dependencies are built.
