file(REMOVE_RECURSE
  "libcres_mem.a"
)
