
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bus.cpp" "src/mem/CMakeFiles/cres_mem.dir/bus.cpp.o" "gcc" "src/mem/CMakeFiles/cres_mem.dir/bus.cpp.o.d"
  "/root/repo/src/mem/cache.cpp" "src/mem/CMakeFiles/cres_mem.dir/cache.cpp.o" "gcc" "src/mem/CMakeFiles/cres_mem.dir/cache.cpp.o.d"
  "/root/repo/src/mem/mpu.cpp" "src/mem/CMakeFiles/cres_mem.dir/mpu.cpp.o" "gcc" "src/mem/CMakeFiles/cres_mem.dir/mpu.cpp.o.d"
  "/root/repo/src/mem/ram.cpp" "src/mem/CMakeFiles/cres_mem.dir/ram.cpp.o" "gcc" "src/mem/CMakeFiles/cres_mem.dir/ram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cres_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
