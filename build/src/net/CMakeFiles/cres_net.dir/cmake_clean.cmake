file(REMOVE_RECURSE
  "CMakeFiles/cres_net.dir/attestation.cpp.o"
  "CMakeFiles/cres_net.dir/attestation.cpp.o.d"
  "CMakeFiles/cres_net.dir/channel.cpp.o"
  "CMakeFiles/cres_net.dir/channel.cpp.o.d"
  "libcres_net.a"
  "libcres_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cres_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
