# Empty dependencies file for cres_net.
# This may be replaced when dependencies are built.
