file(REMOVE_RECURSE
  "libcres_net.a"
)
