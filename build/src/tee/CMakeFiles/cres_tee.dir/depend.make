# Empty dependencies file for cres_tee.
# This may be replaced when dependencies are built.
