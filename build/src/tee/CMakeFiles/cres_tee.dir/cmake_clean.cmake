file(REMOVE_RECURSE
  "CMakeFiles/cres_tee.dir/tee.cpp.o"
  "CMakeFiles/cres_tee.dir/tee.cpp.o.d"
  "libcres_tee.a"
  "libcres_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cres_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
