file(REMOVE_RECURSE
  "libcres_tee.a"
)
