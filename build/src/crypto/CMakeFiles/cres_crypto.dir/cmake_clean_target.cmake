file(REMOVE_RECURSE
  "libcres_crypto.a"
)
