file(REMOVE_RECURSE
  "CMakeFiles/cres_crypto.dir/aes.cpp.o"
  "CMakeFiles/cres_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/cres_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/cres_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/cres_crypto.dir/hmac.cpp.o"
  "CMakeFiles/cres_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/cres_crypto.dir/keystore.cpp.o"
  "CMakeFiles/cres_crypto.dir/keystore.cpp.o.d"
  "CMakeFiles/cres_crypto.dir/merkle.cpp.o"
  "CMakeFiles/cres_crypto.dir/merkle.cpp.o.d"
  "CMakeFiles/cres_crypto.dir/monotonic.cpp.o"
  "CMakeFiles/cres_crypto.dir/monotonic.cpp.o.d"
  "CMakeFiles/cres_crypto.dir/sha256.cpp.o"
  "CMakeFiles/cres_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/cres_crypto.dir/wots.cpp.o"
  "CMakeFiles/cres_crypto.dir/wots.cpp.o.d"
  "libcres_crypto.a"
  "libcres_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cres_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
