# Empty compiler generated dependencies file for cres_crypto.
# This may be replaced when dependencies are built.
