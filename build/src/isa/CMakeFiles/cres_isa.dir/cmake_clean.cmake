file(REMOVE_RECURSE
  "CMakeFiles/cres_isa.dir/assembler.cpp.o"
  "CMakeFiles/cres_isa.dir/assembler.cpp.o.d"
  "CMakeFiles/cres_isa.dir/cpu.cpp.o"
  "CMakeFiles/cres_isa.dir/cpu.cpp.o.d"
  "CMakeFiles/cres_isa.dir/encoding.cpp.o"
  "CMakeFiles/cres_isa.dir/encoding.cpp.o.d"
  "libcres_isa.a"
  "libcres_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cres_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
