# Empty dependencies file for cres_isa.
# This may be replaced when dependencies are built.
