file(REMOVE_RECURSE
  "libcres_isa.a"
)
