# Empty compiler generated dependencies file for cres_attack.
# This may be replaced when dependencies are built.
