file(REMOVE_RECURSE
  "CMakeFiles/cres_attack.dir/attacks.cpp.o"
  "CMakeFiles/cres_attack.dir/attacks.cpp.o.d"
  "CMakeFiles/cres_attack.dir/sidechannel.cpp.o"
  "CMakeFiles/cres_attack.dir/sidechannel.cpp.o.d"
  "libcres_attack.a"
  "libcres_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cres_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
