file(REMOVE_RECURSE
  "libcres_attack.a"
)
