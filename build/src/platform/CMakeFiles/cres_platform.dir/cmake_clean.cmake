file(REMOVE_RECURSE
  "CMakeFiles/cres_platform.dir/fleet.cpp.o"
  "CMakeFiles/cres_platform.dir/fleet.cpp.o.d"
  "CMakeFiles/cres_platform.dir/node.cpp.o"
  "CMakeFiles/cres_platform.dir/node.cpp.o.d"
  "CMakeFiles/cres_platform.dir/scenario.cpp.o"
  "CMakeFiles/cres_platform.dir/scenario.cpp.o.d"
  "CMakeFiles/cres_platform.dir/workload.cpp.o"
  "CMakeFiles/cres_platform.dir/workload.cpp.o.d"
  "libcres_platform.a"
  "libcres_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cres_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
