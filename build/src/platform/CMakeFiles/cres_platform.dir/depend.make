# Empty dependencies file for cres_platform.
# This may be replaced when dependencies are built.
