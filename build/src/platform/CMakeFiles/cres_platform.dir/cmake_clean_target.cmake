file(REMOVE_RECURSE
  "libcres_platform.a"
)
