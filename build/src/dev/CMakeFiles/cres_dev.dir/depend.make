# Empty dependencies file for cres_dev.
# This may be replaced when dependencies are built.
