
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dev/actuator.cpp" "src/dev/CMakeFiles/cres_dev.dir/actuator.cpp.o" "gcc" "src/dev/CMakeFiles/cres_dev.dir/actuator.cpp.o.d"
  "/root/repo/src/dev/dma.cpp" "src/dev/CMakeFiles/cres_dev.dir/dma.cpp.o" "gcc" "src/dev/CMakeFiles/cres_dev.dir/dma.cpp.o.d"
  "/root/repo/src/dev/nic.cpp" "src/dev/CMakeFiles/cres_dev.dir/nic.cpp.o" "gcc" "src/dev/CMakeFiles/cres_dev.dir/nic.cpp.o.d"
  "/root/repo/src/dev/power.cpp" "src/dev/CMakeFiles/cres_dev.dir/power.cpp.o" "gcc" "src/dev/CMakeFiles/cres_dev.dir/power.cpp.o.d"
  "/root/repo/src/dev/sensor.cpp" "src/dev/CMakeFiles/cres_dev.dir/sensor.cpp.o" "gcc" "src/dev/CMakeFiles/cres_dev.dir/sensor.cpp.o.d"
  "/root/repo/src/dev/timer.cpp" "src/dev/CMakeFiles/cres_dev.dir/timer.cpp.o" "gcc" "src/dev/CMakeFiles/cres_dev.dir/timer.cpp.o.d"
  "/root/repo/src/dev/trng.cpp" "src/dev/CMakeFiles/cres_dev.dir/trng.cpp.o" "gcc" "src/dev/CMakeFiles/cres_dev.dir/trng.cpp.o.d"
  "/root/repo/src/dev/uart.cpp" "src/dev/CMakeFiles/cres_dev.dir/uart.cpp.o" "gcc" "src/dev/CMakeFiles/cres_dev.dir/uart.cpp.o.d"
  "/root/repo/src/dev/watchdog.cpp" "src/dev/CMakeFiles/cres_dev.dir/watchdog.cpp.o" "gcc" "src/dev/CMakeFiles/cres_dev.dir/watchdog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cres_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cres_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cres_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
