file(REMOVE_RECURSE
  "CMakeFiles/cres_dev.dir/actuator.cpp.o"
  "CMakeFiles/cres_dev.dir/actuator.cpp.o.d"
  "CMakeFiles/cres_dev.dir/dma.cpp.o"
  "CMakeFiles/cres_dev.dir/dma.cpp.o.d"
  "CMakeFiles/cres_dev.dir/nic.cpp.o"
  "CMakeFiles/cres_dev.dir/nic.cpp.o.d"
  "CMakeFiles/cres_dev.dir/power.cpp.o"
  "CMakeFiles/cres_dev.dir/power.cpp.o.d"
  "CMakeFiles/cres_dev.dir/sensor.cpp.o"
  "CMakeFiles/cres_dev.dir/sensor.cpp.o.d"
  "CMakeFiles/cres_dev.dir/timer.cpp.o"
  "CMakeFiles/cres_dev.dir/timer.cpp.o.d"
  "CMakeFiles/cres_dev.dir/trng.cpp.o"
  "CMakeFiles/cres_dev.dir/trng.cpp.o.d"
  "CMakeFiles/cres_dev.dir/uart.cpp.o"
  "CMakeFiles/cres_dev.dir/uart.cpp.o.d"
  "CMakeFiles/cres_dev.dir/watchdog.cpp.o"
  "CMakeFiles/cres_dev.dir/watchdog.cpp.o.d"
  "libcres_dev.a"
  "libcres_dev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cres_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
