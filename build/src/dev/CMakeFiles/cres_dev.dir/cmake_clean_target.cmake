file(REMOVE_RECURSE
  "libcres_dev.a"
)
