
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/action.cpp" "src/core/CMakeFiles/cres_core.dir/action.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/action.cpp.o.d"
  "/root/repo/src/core/event.cpp" "src/core/CMakeFiles/cres_core.dir/event.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/event.cpp.o.d"
  "/root/repo/src/core/monitor/bus_monitor.cpp" "src/core/CMakeFiles/cres_core.dir/monitor/bus_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/monitor/bus_monitor.cpp.o.d"
  "/root/repo/src/core/monitor/cache_monitor.cpp" "src/core/CMakeFiles/cres_core.dir/monitor/cache_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/monitor/cache_monitor.cpp.o.d"
  "/root/repo/src/core/monitor/cfi_monitor.cpp" "src/core/CMakeFiles/cres_core.dir/monitor/cfi_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/monitor/cfi_monitor.cpp.o.d"
  "/root/repo/src/core/monitor/config_monitor.cpp" "src/core/CMakeFiles/cres_core.dir/monitor/config_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/monitor/config_monitor.cpp.o.d"
  "/root/repo/src/core/monitor/dift_monitor.cpp" "src/core/CMakeFiles/cres_core.dir/monitor/dift_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/monitor/dift_monitor.cpp.o.d"
  "/root/repo/src/core/monitor/environment_monitor.cpp" "src/core/CMakeFiles/cres_core.dir/monitor/environment_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/monitor/environment_monitor.cpp.o.d"
  "/root/repo/src/core/monitor/memory_monitor.cpp" "src/core/CMakeFiles/cres_core.dir/monitor/memory_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/monitor/memory_monitor.cpp.o.d"
  "/root/repo/src/core/monitor/network_monitor.cpp" "src/core/CMakeFiles/cres_core.dir/monitor/network_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/monitor/network_monitor.cpp.o.d"
  "/root/repo/src/core/monitor/peripheral_monitor.cpp" "src/core/CMakeFiles/cres_core.dir/monitor/peripheral_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/monitor/peripheral_monitor.cpp.o.d"
  "/root/repo/src/core/monitor/redundancy_monitor.cpp" "src/core/CMakeFiles/cres_core.dir/monitor/redundancy_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/monitor/redundancy_monitor.cpp.o.d"
  "/root/repo/src/core/monitor/timing_monitor.cpp" "src/core/CMakeFiles/cres_core.dir/monitor/timing_monitor.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/monitor/timing_monitor.cpp.o.d"
  "/root/repo/src/core/policy/policy.cpp" "src/core/CMakeFiles/cres_core.dir/policy/policy.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/policy/policy.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/cres_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/response/degradation.cpp" "src/core/CMakeFiles/cres_core.dir/response/degradation.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/response/degradation.cpp.o.d"
  "/root/repo/src/core/response/recovery.cpp" "src/core/CMakeFiles/cres_core.dir/response/recovery.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/response/recovery.cpp.o.d"
  "/root/repo/src/core/response/response.cpp" "src/core/CMakeFiles/cres_core.dir/response/response.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/response/response.cpp.o.d"
  "/root/repo/src/core/ssm/evidence.cpp" "src/core/CMakeFiles/cres_core.dir/ssm/evidence.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/ssm/evidence.cpp.o.d"
  "/root/repo/src/core/ssm/report.cpp" "src/core/CMakeFiles/cres_core.dir/ssm/report.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/ssm/report.cpp.o.d"
  "/root/repo/src/core/ssm/risk.cpp" "src/core/CMakeFiles/cres_core.dir/ssm/risk.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/ssm/risk.cpp.o.d"
  "/root/repo/src/core/ssm/ssm.cpp" "src/core/CMakeFiles/cres_core.dir/ssm/ssm.cpp.o" "gcc" "src/core/CMakeFiles/cres_core.dir/ssm/ssm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cres_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/cres_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cres_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cres_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/cres_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/dev/CMakeFiles/cres_dev.dir/DependInfo.cmake"
  "/root/repo/build/src/boot/CMakeFiles/cres_boot.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/cres_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cres_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
