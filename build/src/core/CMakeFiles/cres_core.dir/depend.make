# Empty dependencies file for cres_core.
# This may be replaced when dependencies are built.
