file(REMOVE_RECURSE
  "libcres_core.a"
)
