file(REMOVE_RECURSE
  "libcres_sim.a"
)
