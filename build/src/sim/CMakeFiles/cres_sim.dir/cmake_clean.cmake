file(REMOVE_RECURSE
  "CMakeFiles/cres_sim.dir/simulator.cpp.o"
  "CMakeFiles/cres_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/cres_sim.dir/trace.cpp.o"
  "CMakeFiles/cres_sim.dir/trace.cpp.o.d"
  "libcres_sim.a"
  "libcres_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cres_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
