# Empty dependencies file for cres_sim.
# This may be replaced when dependencies are built.
