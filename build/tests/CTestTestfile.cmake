# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_signatures[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_privilege[1]_include.cmake")
include("/root/repo/build/tests/test_dev[1]_include.cmake")
include("/root/repo/build/tests/test_boot[1]_include.cmake")
include("/root/repo/build/tests/test_tee_net[1]_include.cmake")
include("/root/repo/build/tests/test_core_monitor[1]_include.cmake")
include("/root/repo/build/tests/test_core_ssm[1]_include.cmake")
include("/root/repo/build/tests/test_platform[1]_include.cmake")
include("/root/repo/build/tests/test_attack[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_fleet[1]_include.cmake")
include("/root/repo/build/tests/test_lockstep[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_report_irq[1]_include.cmake")
include("/root/repo/build/tests/test_spectre[1]_include.cmake")
