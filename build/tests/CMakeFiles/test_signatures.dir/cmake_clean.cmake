file(REMOVE_RECURSE
  "CMakeFiles/test_signatures.dir/signatures_test.cpp.o"
  "CMakeFiles/test_signatures.dir/signatures_test.cpp.o.d"
  "test_signatures"
  "test_signatures.pdb"
  "test_signatures[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
