# Empty compiler generated dependencies file for test_signatures.
# This may be replaced when dependencies are built.
