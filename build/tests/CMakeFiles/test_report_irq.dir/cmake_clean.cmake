file(REMOVE_RECURSE
  "CMakeFiles/test_report_irq.dir/report_irq_test.cpp.o"
  "CMakeFiles/test_report_irq.dir/report_irq_test.cpp.o.d"
  "test_report_irq"
  "test_report_irq.pdb"
  "test_report_irq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_irq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
