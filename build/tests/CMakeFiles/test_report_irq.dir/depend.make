# Empty dependencies file for test_report_irq.
# This may be replaced when dependencies are built.
