# Empty compiler generated dependencies file for test_spectre.
# This may be replaced when dependencies are built.
