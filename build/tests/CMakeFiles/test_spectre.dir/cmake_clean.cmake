file(REMOVE_RECURSE
  "CMakeFiles/test_spectre.dir/spectre_test.cpp.o"
  "CMakeFiles/test_spectre.dir/spectre_test.cpp.o.d"
  "test_spectre"
  "test_spectre.pdb"
  "test_spectre[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spectre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
