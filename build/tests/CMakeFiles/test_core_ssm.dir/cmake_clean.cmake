file(REMOVE_RECURSE
  "CMakeFiles/test_core_ssm.dir/core_ssm_test.cpp.o"
  "CMakeFiles/test_core_ssm.dir/core_ssm_test.cpp.o.d"
  "test_core_ssm"
  "test_core_ssm.pdb"
  "test_core_ssm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_ssm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
