# Empty compiler generated dependencies file for test_core_ssm.
# This may be replaced when dependencies are built.
