file(REMOVE_RECURSE
  "CMakeFiles/test_core_monitor.dir/core_monitor_test.cpp.o"
  "CMakeFiles/test_core_monitor.dir/core_monitor_test.cpp.o.d"
  "test_core_monitor"
  "test_core_monitor.pdb"
  "test_core_monitor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
