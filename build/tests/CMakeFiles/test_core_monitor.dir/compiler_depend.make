# Empty compiler generated dependencies file for test_core_monitor.
# This may be replaced when dependencies are built.
