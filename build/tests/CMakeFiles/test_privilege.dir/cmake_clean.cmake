file(REMOVE_RECURSE
  "CMakeFiles/test_privilege.dir/privilege_test.cpp.o"
  "CMakeFiles/test_privilege.dir/privilege_test.cpp.o.d"
  "test_privilege"
  "test_privilege.pdb"
  "test_privilege[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_privilege.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
