file(REMOVE_RECURSE
  "CMakeFiles/test_dev.dir/dev_test.cpp.o"
  "CMakeFiles/test_dev.dir/dev_test.cpp.o.d"
  "test_dev"
  "test_dev.pdb"
  "test_dev[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
