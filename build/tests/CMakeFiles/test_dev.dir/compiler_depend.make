# Empty compiler generated dependencies file for test_dev.
# This may be replaced when dependencies are built.
