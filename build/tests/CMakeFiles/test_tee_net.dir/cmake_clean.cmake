file(REMOVE_RECURSE
  "CMakeFiles/test_tee_net.dir/tee_net_test.cpp.o"
  "CMakeFiles/test_tee_net.dir/tee_net_test.cpp.o.d"
  "test_tee_net"
  "test_tee_net.pdb"
  "test_tee_net[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tee_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
