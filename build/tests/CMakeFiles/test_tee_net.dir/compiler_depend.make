# Empty compiler generated dependencies file for test_tee_net.
# This may be replaced when dependencies are built.
