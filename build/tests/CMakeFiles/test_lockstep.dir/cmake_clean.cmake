file(REMOVE_RECURSE
  "CMakeFiles/test_lockstep.dir/lockstep_test.cpp.o"
  "CMakeFiles/test_lockstep.dir/lockstep_test.cpp.o.d"
  "test_lockstep"
  "test_lockstep.pdb"
  "test_lockstep[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lockstep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
