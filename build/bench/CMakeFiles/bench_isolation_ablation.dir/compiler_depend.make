# Empty compiler generated dependencies file for bench_isolation_ablation.
# This may be replaced when dependencies are built.
