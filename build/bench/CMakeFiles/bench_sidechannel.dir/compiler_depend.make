# Empty compiler generated dependencies file for bench_sidechannel.
# This may be replaced when dependencies are built.
