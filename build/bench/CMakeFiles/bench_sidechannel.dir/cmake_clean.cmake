file(REMOVE_RECURSE
  "CMakeFiles/bench_sidechannel.dir/bench_sidechannel.cpp.o"
  "CMakeFiles/bench_sidechannel.dir/bench_sidechannel.cpp.o.d"
  "bench_sidechannel"
  "bench_sidechannel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sidechannel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
