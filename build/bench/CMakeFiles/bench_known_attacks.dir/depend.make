# Empty dependencies file for bench_known_attacks.
# This may be replaced when dependencies are built.
