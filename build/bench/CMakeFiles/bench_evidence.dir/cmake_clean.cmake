file(REMOVE_RECURSE
  "CMakeFiles/bench_evidence.dir/bench_evidence.cpp.o"
  "CMakeFiles/bench_evidence.dir/bench_evidence.cpp.o.d"
  "bench_evidence"
  "bench_evidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
