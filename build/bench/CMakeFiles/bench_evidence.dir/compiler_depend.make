# Empty compiler generated dependencies file for bench_evidence.
# This may be replaced when dependencies are built.
