file(REMOVE_RECURSE
  "CMakeFiles/bench_csf_lifecycle.dir/bench_csf_lifecycle.cpp.o"
  "CMakeFiles/bench_csf_lifecycle.dir/bench_csf_lifecycle.cpp.o.d"
  "bench_csf_lifecycle"
  "bench_csf_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_csf_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
