# Empty dependencies file for bench_csf_lifecycle.
# This may be replaced when dependencies are built.
