file(REMOVE_RECURSE
  "CMakeFiles/bench_boot.dir/bench_boot.cpp.o"
  "CMakeFiles/bench_boot.dir/bench_boot.cpp.o.d"
  "bench_boot"
  "bench_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
